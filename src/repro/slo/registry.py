"""The declarative scenario registry: TOML specs compiled to trial lists.

A scenario file describes one SLO scenario as data::

    [scenario]
    name = "overload-on-wakeup"
    title = "Overload-on-Wakeup tail latency"
    trial = "repro.slo.trial:bug_slo_trial"
    variants = ["buggy", "fixed"]
    seeds = [42, 1051]
    duration_ms = 1000
    features = []
    tracepoints = ["sched.wakeup", "sched.switch"]

    [scenario.params]
    bug = "overload-on-wakeup"
    latency_deadline_us = "1023"

    [slo]
    max_p99_us = 2047
    max_idle_overload = 0.02

Mix scenarios add ``topology`` and ``[[scenario.workload]]`` tables
(``spec``/``count``/``stride`` plus factory params); the compiler folds
them into the ``mix`` spec param (:func:`repro.slo.trial.encode_mix`).

:func:`compile_specs` expands one scenario into its variant x seed grid
of orchestrator :class:`~repro.perf.orchestrator.TrialSpec`s;
:func:`run_registry` runs any number of scenarios through the pooled
orchestrator (one ``run_trials`` call, so trials from different
scenarios shard across workers together) and folds the outcomes into an
:class:`~repro.slo.report.SLOReport`.  SLO thresholds deliberately stay
out of the compiled specs: they are judged parent-side, so cached trial
metrics survive threshold edits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.perf.orchestrator import (
    OrchestratorRun,
    ResultCache,
    TrialSpec,
    run_trials,
)
from repro.slo._toml import TOMLError, load_toml
from repro.slo.report import (
    ScenarioReport,
    SLOMetrics,
    SLOReport,
    SLOThresholds,
)
from repro.slo.trial import MixEntry, encode_mix

PathLike = Union[str, Path]

#: Variants a bug-scenario file may request.
_BUG_VARIANTS = ("buggy", "fixed")


@dataclass(frozen=True)
class WorkloadEntry:
    """One ``[[scenario.workload]]`` table: a task population."""

    spec: str
    count: int
    stride: int = 1
    params: Tuple[Tuple[str, str], ...] = ()

    def as_mix_entry(self) -> MixEntry:
        return (self.spec, self.count, self.stride, self.params)


@dataclass(frozen=True)
class ScenarioSpec:
    """One parsed scenario file."""

    name: str
    title: str
    trial: str
    variants: Tuple[str, ...]
    seeds: Tuple[int, ...]
    duration_ms: int
    scale: float
    features: Tuple[str, ...]
    params: Tuple[Tuple[str, str], ...]
    workloads: Tuple[WorkloadEntry, ...]
    topology: Optional[str]
    tracepoints: Tuple[str, ...]
    thresholds: SLOThresholds
    source: str = ""


def _require(table: Mapping[str, object], key: str, source: str) -> object:
    if key not in table:
        raise ValueError(f"{source}: [scenario] is missing {key!r}")
    return table[key]


def _str_list(value: object, what: str, source: str) -> Tuple[str, ...]:
    if not isinstance(value, list) or not all(
        isinstance(v, str) for v in value
    ):
        raise ValueError(f"{source}: {what} must be a list of strings")
    return tuple(value)


def _int_list(value: object, what: str, source: str) -> Tuple[int, ...]:
    if not isinstance(value, list) or not all(
        isinstance(v, int) and not isinstance(v, bool) for v in value
    ):
        raise ValueError(f"{source}: {what} must be a list of integers")
    return tuple(value)


def _parse_workloads(
    value: object, source: str
) -> Tuple[WorkloadEntry, ...]:
    if not isinstance(value, list):
        raise ValueError(f"{source}: scenario.workload must be a table array")
    entries: List[WorkloadEntry] = []
    for i, item in enumerate(value):
        if not isinstance(item, dict):
            raise ValueError(f"{source}: workload[{i}] must be a table")
        if "spec" not in item or "count" not in item:
            raise ValueError(
                f"{source}: workload[{i}] needs 'spec' and 'count'"
            )
        params = item.get("params", {})
        if not isinstance(params, dict):
            raise ValueError(f"{source}: workload[{i}].params must be a table")
        entries.append(
            WorkloadEntry(
                spec=str(item["spec"]),
                count=int(item["count"]),  # type: ignore[call-overload]
                stride=int(item.get("stride", 1)),  # type: ignore[call-overload]
                params=tuple(
                    sorted((str(k), str(v)) for k, v in params.items())
                ),
            )
        )
    return tuple(entries)


def load_scenario(path: PathLike) -> ScenarioSpec:
    """Parse and structurally validate one scenario TOML file."""
    source = str(path)
    try:
        doc = load_toml(path)
    except TOMLError as exc:
        raise ValueError(f"{source}: {exc}") from None
    table = doc.get("scenario")
    if not isinstance(table, dict):
        raise ValueError(f"{source}: missing [scenario] table")

    name = str(_require(table, "name", source))
    trial = str(_require(table, "trial", source))
    if ":" not in trial:
        raise ValueError(
            f"{source}: trial must be 'module:function', got {trial!r}"
        )
    workloads = _parse_workloads(table.get("workload", []), source)
    topology = table.get("topology")
    if topology is not None and not isinstance(topology, str):
        raise ValueError(f"{source}: topology must be a string")
    default_variants = (
        _BUG_VARIANTS if not workloads else ("base",)
    )
    variants = _str_list(
        table.get("variants", list(default_variants)), "variants", source
    )
    if not variants:
        raise ValueError(f"{source}: variants must not be empty")
    seeds = _int_list(table.get("seeds", [42]), "seeds", source)
    if not seeds:
        raise ValueError(f"{source}: seeds must not be empty")
    params_table = table.get("params", {})
    if not isinstance(params_table, dict):
        raise ValueError(f"{source}: scenario.params must be a table")
    for ref in [w.spec for w in workloads]:
        if ":" not in ref:
            raise ValueError(
                f"{source}: workload spec must be 'module:function', "
                f"got {ref!r}"
            )
    slo_table = doc.get("slo", {})
    if not isinstance(slo_table, dict):
        raise ValueError(f"{source}: [slo] must be a table")
    try:
        thresholds = SLOThresholds.from_mapping(slo_table)
    except ValueError as exc:
        raise ValueError(f"{source}: {exc}") from None

    return ScenarioSpec(
        name=name,
        title=str(table.get("title", name)),
        trial=trial,
        variants=variants,
        seeds=seeds,
        duration_ms=int(table.get("duration_ms", 1000)),  # type: ignore[call-overload]
        scale=float(table.get("scale", 1.0)),  # type: ignore[arg-type]
        features=_str_list(table.get("features", []), "features", source),
        params=tuple(
            sorted((str(k), str(v)) for k, v in params_table.items())
        ),
        workloads=workloads,
        topology=topology,
        tracepoints=_str_list(
            table.get("tracepoints", []), "tracepoints", source
        ),
        thresholds=thresholds,
        source=source,
    )


def shipped_scenario_paths() -> List[Path]:
    """The scenario files shipped with the package, sorted by name."""
    root = Path(__file__).resolve().parent / "scenarios"
    return sorted(root.glob("*.toml"))


def load_registry(
    paths: Optional[Sequence[PathLike]] = None,
) -> List[ScenarioSpec]:
    """Load scenario files (shipped registry by default).

    Directories are expanded to their ``*.toml`` files; scenarios come
    back sorted by name, and duplicate names are rejected.
    """
    files: List[Path] = []
    if paths is None:
        files = shipped_scenario_paths()
    else:
        for entry in paths:
            p = Path(entry)
            if p.is_dir():
                files.extend(sorted(p.glob("*.toml")))
            else:
                files.append(p)
    scenarios = sorted(
        (load_scenario(p) for p in files), key=lambda s: s.name
    )
    seen: Dict[str, str] = {}
    for scenario in scenarios:
        if scenario.name in seen:
            raise ValueError(
                f"duplicate scenario name {scenario.name!r} "
                f"({seen[scenario.name]} and {scenario.source})"
            )
        seen[scenario.name] = scenario.source
    return scenarios


def compile_specs(
    scenario: ScenarioSpec,
    scale: float = 1.0,
    record: bool = False,
) -> List[TrialSpec]:
    """Expand one scenario into its variant x seed grid of trial specs.

    ``scale`` multiplies the scenario's own scale (the CLI's quick knob).
    ``record`` adds the replay layer's recording param and opts the spec
    out of the result cache (recordings ride back as artifacts, which
    are never cached).
    """
    base_params: Dict[str, str] = dict(scenario.params)
    base_params.setdefault("duration_ms", str(scenario.duration_ms))
    if scenario.topology is not None:
        base_params["topology"] = scenario.topology
    if scenario.workloads:
        base_params["mix"] = encode_mix(
            [w.as_mix_entry() for w in scenario.workloads]
        )
    if record:
        base_params["record"] = "1"
    specs: List[TrialSpec] = []
    for variant in scenario.variants:
        params = dict(base_params)
        if variant != "base":
            params["variant"] = variant
        for seed in scenario.seeds:
            specs.append(
                TrialSpec(
                    kind=scenario.trial,
                    scenario=scenario.name,
                    seed=seed,
                    features=scenario.features,
                    scale=scenario.scale * scale,
                    params=tuple(sorted(params.items())),
                    cache=not record,
                )
            )
    return specs


def spec_variant(spec: TrialSpec) -> str:
    """The scenario variant a compiled spec belongs to."""
    variant = spec.param("variant", "base")
    assert variant is not None
    return variant


def run_registry(
    scenarios: Sequence[ScenarioSpec],
    scale: float = 1.0,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[..., Any]] = None,
) -> Tuple[SLOReport, OrchestratorRun]:
    """Run every scenario's trials through the pooled orchestrator.

    All scenarios compile into one flat spec list (one pool, maximal
    sharding); outcomes fold back into per-(scenario, variant) reports
    in registry order.
    """
    specs: List[TrialSpec] = []
    bounds: List[Tuple[ScenarioSpec, int]] = []
    for scenario in scenarios:
        compiled = compile_specs(scenario, scale=scale)
        bounds.append((scenario, len(compiled)))
        specs.extend(compiled)
    run = run_trials(specs, jobs=jobs, cache=cache, progress=progress)

    report = SLOReport()
    cursor = 0
    for scenario, width in bounds:
        outcomes = run.outcomes[cursor:cursor + width]
        cursor += width
        by_variant: Dict[str, ScenarioReport] = {}
        for variant in scenario.variants:
            by_variant[variant] = ScenarioReport(
                scenario=scenario.name,
                variant=variant,
                thresholds=scenario.thresholds,
            )
        for outcome in outcomes:
            variant = spec_variant(outcome.spec)
            entry = by_variant[variant]
            entry.per_seed.append(
                (
                    outcome.spec.seed,
                    SLOMetrics.from_row(outcome.result.row),
                )
            )
            entry.schedule_digests.append(outcome.result.schedule_digest)
        report.scenarios.extend(
            by_variant[variant] for variant in scenario.variants
        )
    return report, run


def find_scenarios(
    scenarios: Sequence[ScenarioSpec], names: Sequence[str]
) -> List[ScenarioSpec]:
    """Select scenarios by name, preserving registry order."""
    known = {s.name for s in scenarios}
    missing = [n for n in names if n not in known]
    if missing:
        raise ValueError(
            f"unknown scenario(s): {', '.join(missing)} "
            f"(registry has: {', '.join(sorted(known))})"
        )
    wanted = set(names)
    return [s for s in scenarios if s.name in wanted]


def record_spec(spec: TrialSpec) -> TrialSpec:
    """A copy of a compiled spec with recording on (and caching off)."""
    params = dict(spec.params)
    params["record"] = "1"
    return replace(
        spec, params=tuple(sorted(params.items())), cache=False
    )

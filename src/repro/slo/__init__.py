"""SLO observability layer: percentile reports, scenario registry, replay.

The paper's bugs are *tail* phenomena -- cores idle while runnable threads
wait, inflating wakeup latency far beyond what averages show -- so this
package turns the obs layer's histograms into service-level verdicts:

* :mod:`repro.slo.report` computes per-scenario p50/p99/p99.9 wakeup
  latency, scheduling jitter, deadline-miss rate, and idle-while-
  overloaded density, and judges them against declarative thresholds.
* :mod:`repro.slo.registry` loads TOML scenario specs (workload mix,
  topology, features, seeds, thresholds) and compiles them to the
  orchestrator's :class:`~repro.perf.orchestrator.TrialSpec` lists; the
  paper's four bug scenarios ship as specs under ``scenarios/``.
* :mod:`repro.slo.replay` records a run's scheduler event stream to a
  versioned JSONL file and re-drives the scenario through the engine,
  diffing schedule digests, SLO metrics, and the event stream itself to
  pinpoint the first divergent event -- regression-diffing for engine
  rewrites.
"""

from __future__ import annotations

from repro.slo.registry import (
    ScenarioSpec,
    compile_specs,
    load_registry,
    load_scenario,
    run_registry,
    shipped_scenario_paths,
)
from repro.slo.replay import ReplayDiff, read_trace, record_trace, replay_trace
from repro.slo.report import (
    ScenarioReport,
    SLOMetrics,
    SLOReport,
    SLOThresholds,
    evaluate,
)

__all__ = [
    "ReplayDiff",
    "ScenarioReport",
    "ScenarioSpec",
    "SLOMetrics",
    "SLOReport",
    "SLOThresholds",
    "compile_specs",
    "evaluate",
    "load_registry",
    "load_scenario",
    "read_trace",
    "record_trace",
    "replay_trace",
    "run_registry",
    "shipped_scenario_paths",
]

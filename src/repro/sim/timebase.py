"""Backward-compatible re-export of :mod:`repro.sched.timebase`.

The timing constants moved into the scheduler layer so that
``repro.sched`` never has to reach up into ``repro.sim`` (the layering
contract checked by ``repro lint``).  Simulation code and existing callers
keep importing them from here; ``sim`` importing ``sched`` is the allowed
direction.
"""

from __future__ import annotations

from repro.sched.timebase import (
    BALANCE_BASE_US,
    MIN_GRANULARITY_US,
    MS,
    SCHED_LATENCY_US,
    SEC,
    TICK_US,
    US,
    WAKEUP_GRANULARITY_US,
    format_time,
)

__all__ = [
    "US",
    "MS",
    "SEC",
    "TICK_US",
    "BALANCE_BASE_US",
    "SCHED_LATENCY_US",
    "MIN_GRANULARITY_US",
    "WAKEUP_GRANULARITY_US",
    "format_time",
]

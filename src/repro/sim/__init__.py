"""Discrete-event simulation substrate.

Virtual time is an integer number of **microseconds**.  Two event classes
drive the system:

* a global scheduler tick every :data:`~repro.sim.timebase.TICK_US`
  (1 ms, like the kernel's 1000 Hz tick) that performs per-CPU accounting,
  preemption checks, and periodic load balancing; and
* precise one-shot events (task phase completions, timer wakeups, hotplug
  operations) scheduled on the :class:`~repro.sim.engine.EventLoop` heap.
"""

from repro.sim.engine import EventLoop, SimulationError
from repro.sim.timebase import MS, SEC, TICK_US, US, format_time

__all__ = [
    "EventLoop",
    "SimulationError",
    "MS",
    "SEC",
    "TICK_US",
    "US",
    "format_time",
]

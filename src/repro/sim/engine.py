"""Event loop: a heap of timed callbacks with deterministic ordering.

Events firing at the same microsecond run in scheduling order (a
monotonically increasing sequence number breaks ties), so a simulation with
a fixed seed is fully reproducible.

Cancellation is lazy (an entry is flagged, not removed), but the loop keeps
itself honest about it: a live-event counter makes :meth:`EventLoop.pending`
O(1), and when more than half of the heap is cancelled entries the heap is
compacted in one pass.  Long NOHZ-heavy runs -- which cancel timer after
timer -- therefore stop degrading as garbage accumulates.  Compaction only
reorganizes the heap around the same ``(when, seq)`` total order, so the
firing sequence is byte-identical with compaction on or off.

The vectorized core (``SchedFeatures.with_vectorized``) additionally turns
on *batched draining*: :meth:`EventLoop.run_until` extracts each
same-timestamp cohort from the heap at once, applies the lazy-cancel mask
in one sweep, and dispatches the survivors in one pass -- same ``(when,
seq)`` order, so traces stay byte-identical (pinned by
test_batch_order.py).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.obs.tracepoints import TRACEPOINTS

#: Fired once per executed callback with its ``label``, so obs traces can
#: attribute heap activity (tick vs phase-end vs wake).  Kernel-style
#: static tracepoint: one ``enabled`` branch when nobody listens.
_TP_CALLBACK = TRACEPOINTS.tracepoint("engine.callback")

#: Heaps smaller than this are never compacted: rebuilding them costs more
#: than the dead entries do.
_COMPACT_MIN_HEAP = 64


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""


class _Event:
    """A scheduled callback; cancellation just flags the entry (lazy delete).

    Events never define ordering themselves: the heap stores ``(when,
    seq, event)`` triples, so heapq compares plain ints in C (the unique
    ``seq`` guarantees the event object is never reached by a compare).
    """

    __slots__ = ("when", "seq", "callback", "cancelled", "fired", "popped", "label")

    def __init__(self, when: int, seq: int, callback: Callable[[], None], label: str):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False
        #: True once the entry left the heap.  Batched draining extracts a
        #: whole same-timestamp cohort before firing it, so an event can be
        #: cancelled while popped-but-unfired; the flag keeps the loop's
        #: lazy-cancel accounting exact (such a cancel is not heap garbage).
        self.popped = False
        self.label = label


class EventHandle:
    """Opaque handle returned by :meth:`EventLoop.schedule`; supports cancel."""

    __slots__ = ("_event", "_loop")

    def __init__(self, event: _Event, loop: "EventLoop"):
        self._event = event
        self._loop = loop

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once.

        The loop's live counter is adjusted exactly once, no matter how
        many times cancel is called, and never for an already-fired event.
        """
        event = self._event
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        self._loop._note_cancel(event)

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def when(self) -> int:
        """Absolute firing time in microseconds."""
        return self._event.when


class EventLoop:
    """A discrete-event loop over integer-microsecond virtual time."""

    def __init__(
        self, start_time: int = 0, compact: bool = True, batch: bool = False
    ):
        self._now = start_time
        #: Batched draining: ``run_until`` extracts whole same-timestamp
        #: cohorts and fires them through one dispatch pass (the heap's
        #: (when, seq) order is preserved, so firing order -- and every
        #: trace -- is byte-identical to event-at-a-time draining).
        self._batch = batch
        self._heap: list = []
        self._seq = itertools.count()
        self._events_fired = 0
        self._running = False
        #: Live (scheduled, not cancelled, not fired) events.
        self._live = 0
        #: Cancelled entries still sitting in the heap (lazy deletes).
        self._lazy_cancels = 0
        #: Compact the heap when lazy cancels outnumber live entries.
        self._compact_enabled = compact
        #: Number of compaction passes performed (bench accounting).
        self.compactions = 0

    @property
    def now(self) -> int:
        """Current virtual time (microseconds)."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (for overhead accounting)."""
        return self._events_fired

    def schedule(
        self,
        delay: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Run ``callback`` ``delay`` microseconds from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already queued for the current microsecond.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}us in the past")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(
        self,
        when: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Run ``callback`` at absolute time ``when`` (microseconds)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when}us, now is {self._now}us"
            )
        seq = next(self._seq)
        event = _Event(when, seq, callback, label)
        heapq.heappush(self._heap, (when, seq, event))
        self._live += 1
        return EventHandle(event, self)

    def _note_cancel(self, event: _Event) -> None:
        """Account one cancellation; compact when garbage dominates.

        Compaction triggers when lazy cancels outnumber live heap entries
        *and* the heap has at least ``_COMPACT_MIN_HEAP`` (64) entries --
        rebuilding a smaller heap costs more than its dead entries do.
        Steady-state simulations keep small heaps (one phase-end per busy
        CPU plus sleeper timers) and pop cancelled entries within
        microseconds, so the benchmarks legitimately report
        ``heap_compactions == 0``; see test_engine.py for a workload
        shaped to force one.
        """
        self._live -= 1
        if event.popped:
            # Cancelled between batch extraction and firing: the entry is
            # no longer in the heap, so it is not lazy-delete garbage.
            return
        self._lazy_cancels += 1
        if (
            self._compact_enabled
            and len(self._heap) >= _COMPACT_MIN_HEAP
            and self._lazy_cancels * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors.

        The heap invariant is rebuilt over the same ``(when, seq)`` keys,
        so subsequent pops produce exactly the order lazy deletion would
        have -- compaction is invisible to the simulation.
        """
        self._heap = [t for t in self._heap if not t[2].cancelled]
        heapq.heapify(self._heap)
        self._lazy_cancels = 0
        self.compactions += 1

    def run_until(self, deadline: int) -> None:
        """Fire events in order until ``deadline`` (inclusive) or exhaustion.

        Time is left at ``deadline`` even if the heap empties earlier, so
        back-to-back ``run_until`` calls see monotonic time.
        """
        if deadline < self._now:
            raise SimulationError(
                f"deadline {deadline}us is before now {self._now}us"
            )
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        try:
            if self._batch:
                self._drain_batched(deadline)
            else:
                heap = self._heap
                while heap and heap[0][0] <= deadline:
                    event = heapq.heappop(heap)[2]
                    if event.cancelled:
                        self._lazy_cancels -= 1
                        continue
                    event.fired = True
                    self._live -= 1
                    self._now = event.when
                    self._events_fired += 1
                    if _TP_CALLBACK.enabled:
                        _TP_CALLBACK.emit(self._now, label=event.label)
                    event.callback()
            self._now = deadline
        finally:
            self._running = False

    def _drain_batched(self, deadline: int) -> None:
        """Fire events in same-timestamp cohorts (the vectorized core).

        Heap pops at one timestamp already come out in ``seq`` order, so
        extracting the whole cohort first and dispatching it in one pass
        preserves the exact firing order of event-at-a-time draining.
        The lazy-cancel mask is applied to the cohort in one sweep; a
        callback cancelling a *later* event of its own cohort is honored
        by the per-event flag check (with the accounting handled by
        ``_note_cancel`` via the ``popped`` marker).  Callbacks that
        schedule new work at the current timestamp are picked up by the
        outer loop as a follow-on cohort -- their sequence numbers are
        necessarily higher, so ordering is again identical.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap and heap[0][0] <= deadline:
            when = heap[0][0]
            cohort: list = []
            append = cohort.append
            while heap and heap[0][0] == when:
                event = heappop(heap)[2]
                event.popped = True
                append(event)
            live = [e for e in cohort if not e.cancelled]
            self._lazy_cancels -= len(cohort) - len(live)
            self._now = when
            for event in live:
                if event.cancelled:
                    continue  # cancelled by an earlier callback this cohort
                event.fired = True
                self._live -= 1
                self._events_fired += 1
                if _TP_CALLBACK.enabled:
                    _TP_CALLBACK.emit(when, label=event.label)
                event.callback()

    def run_while(
        self,
        condition: Callable[[], bool],
        deadline: int,
        check_interval: Optional[int] = None,
    ) -> bool:
        """Run until ``condition()`` turns false or ``deadline`` passes.

        The condition is evaluated after every fired event (or, when
        ``check_interval`` is given, on that period).  Returns ``True`` when
        the condition became false in time, ``False`` on deadline.
        """
        if check_interval is not None and check_interval <= 0:
            raise SimulationError("check_interval must be positive")
        if not condition():
            return True
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        try:
            next_check = self._now
            while self._heap and self._heap[0][0] <= deadline:
                event = heapq.heappop(self._heap)[2]
                if event.cancelled:
                    self._lazy_cancels -= 1
                    continue
                event.fired = True
                self._live -= 1
                self._now = event.when
                self._events_fired += 1
                if _TP_CALLBACK.enabled:
                    _TP_CALLBACK.emit(self._now, label=event.label)
                event.callback()
                if check_interval is None or self._now >= next_check:
                    if not condition():
                        return True
                    if check_interval is not None:
                        next_check = self._now + check_interval
            self._now = deadline
            return not condition()
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    def heap_size(self) -> int:
        """Heap entries including lazy-cancelled garbage (introspection)."""
        return len(self._heap)

    def __repr__(self) -> str:
        return (
            f"EventLoop(now={self._now}us, pending={self.pending()}, "
            f"fired={self._events_fired})"
        )

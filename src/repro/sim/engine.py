"""Event loop: a heap of timed callbacks with deterministic ordering.

Events firing at the same microsecond run in scheduling order (a
monotonically increasing sequence number breaks ties), so a simulation with
a fixed seed is fully reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.obs.tracepoints import TRACEPOINTS

#: Fired once per executed callback with its ``label``, so obs traces can
#: attribute heap activity (tick vs phase-end vs wake).  Kernel-style
#: static tracepoint: one ``enabled`` branch when nobody listens.
_TP_CALLBACK = TRACEPOINTS.tracepoint("engine.callback")


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""


class _Event:
    """A scheduled callback; cancellation just flags the entry (lazy delete)."""

    __slots__ = ("when", "seq", "callback", "cancelled", "label")

    def __init__(self, when: int, seq: int, callback: Callable[[], None], label: str):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label

    def __lt__(self, other: "_Event") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class EventHandle:
    """Opaque handle returned by :meth:`EventLoop.schedule`; supports cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def when(self) -> int:
        """Absolute firing time in microseconds."""
        return self._event.when


class EventLoop:
    """A discrete-event loop over integer-microsecond virtual time."""

    def __init__(self, start_time: int = 0):
        self._now = start_time
        self._heap: list = []
        self._seq = itertools.count()
        self._events_fired = 0
        self._running = False

    @property
    def now(self) -> int:
        """Current virtual time (microseconds)."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (for overhead accounting)."""
        return self._events_fired

    def schedule(
        self,
        delay: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Run ``callback`` ``delay`` microseconds from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already queued for the current microsecond.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}us in the past")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(
        self,
        when: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Run ``callback`` at absolute time ``when`` (microseconds)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when}us, now is {self._now}us"
            )
        event = _Event(when, next(self._seq), callback, label)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def run_until(self, deadline: int) -> None:
        """Fire events in order until ``deadline`` (inclusive) or exhaustion.

        Time is left at ``deadline`` even if the heap empties earlier, so
        back-to-back ``run_until`` calls see monotonic time.
        """
        if deadline < self._now:
            raise SimulationError(
                f"deadline {deadline}us is before now {self._now}us"
            )
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        try:
            while self._heap and self._heap[0].when <= deadline:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.when
                self._events_fired += 1
                if _TP_CALLBACK.enabled:
                    _TP_CALLBACK.emit(self._now, label=event.label)
                event.callback()
            self._now = deadline
        finally:
            self._running = False

    def run_while(
        self,
        condition: Callable[[], bool],
        deadline: int,
        check_interval: Optional[int] = None,
    ) -> bool:
        """Run until ``condition()`` turns false or ``deadline`` passes.

        The condition is evaluated after every fired event (or, when
        ``check_interval`` is given, on that period).  Returns ``True`` when
        the condition became false in time, ``False`` on deadline.
        """
        if check_interval is not None and check_interval <= 0:
            raise SimulationError("check_interval must be positive")
        if not condition():
            return True
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        try:
            next_check = self._now
            while self._heap and self._heap[0].when <= deadline:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.when
                self._events_fired += 1
                if _TP_CALLBACK.enabled:
                    _TP_CALLBACK.emit(self._now, label=event.label)
                event.callback()
                if check_interval is None or self._now >= next_check:
                    if not condition():
                        return True
                    if check_interval is not None:
                        next_check = self._now + check_interval
            self._now = deadline
            return not condition()
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def __repr__(self) -> str:
        return (
            f"EventLoop(now={self._now}us, pending={self.pending()}, "
            f"fired={self._events_fired})"
        )

"""The simulated machine: event loop + scheduler + program executor.

:class:`System` wires together the event engine, the scheduler facade, and
the workload phase interpreter:

* a global 1 ms tick drives accounting, tick preemption, periodic balancing
  and the NOHZ kick (busy CPUs tick; idle CPUs are tickless);
* per-CPU one-shot events mark the completion of compute phases;
* sleeps are timer wakeups (the "waker" is the CPU the task slept on,
  like a local timer interrupt);
* spinlock/spin-barrier waiters *occupy their CPU and burn cycles* until
  granted or preempted -- the mechanism behind the paper's super-linear
  slowdowns;
* blocking primitives (mutexes, channels, blocking barriers) put tasks to
  sleep and wake them through the scheduler's wakeup-placement path, with
  the releasing task's CPU as the waker (the Overload-on-Wakeup trigger).

Everything is deterministic for a fixed seed.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.sched.features import SchedFeatures
from repro.sched.scheduler import Scheduler
from repro.sched.task import Task, TaskState, reset_tid_counter
from repro.sim.engine import EventHandle, EventLoop, SimulationError
from repro.sim.timebase import TICK_US
from repro.topology.machine import MachineTopology
from repro.viz.events import FanoutProbe, Probe
from repro.workloads.base import (
    BarrierWait,
    Exit,
    FlagAdvance,
    FlagWait,
    LockAcquire,
    LockRelease,
    Notify,
    Run,
    Sleep,
    Spawn,
    TaskSpec,
    WaitOn,
)
from repro.workloads.sync import Barrier, SpinFlag, SpinLock

#: Safety bound on zero-duration phases processed back-to-back per task.
_MAX_INLINE_PHASES = 100_000


class System:
    """A simulated multicore machine running workload programs."""

    def __init__(
        self,
        topology: MachineTopology,
        features: Optional[SchedFeatures] = None,
        probe: Optional[Probe] = None,
        seed: int = 0,
    ):
        self.topology = topology
        # Tid allocation is process-global; restart it per system so two
        # same-seed runs in one process replay byte-identical traces.
        reset_tid_counter()
        resolved = features if features is not None else SchedFeatures()
        self.loop = EventLoop(
            compact=resolved.perf_event_compaction,
            batch=resolved.perf_vectorized,
        )
        if probe is None:
            # A fanout by default, so tools (sanity checker, tracers) can
            # attach and detach mid-run like the paper's on-demand profiler.
            probe = FanoutProbe()
        self.scheduler = Scheduler(topology, features, probe)
        self.rng = random.Random(seed)
        #: Hooks invoked after every tick with the current time (stats,
        #: sanity checker, ...).
        self.tick_hooks: List[Callable[[int], None]] = []
        self._phase_events: Dict[int, EventHandle] = {}
        self._started = False
        #: All tasks ever spawned, for completion queries.
        self.spawned: List[Task] = []
        #: Optional :class:`repro.obs.session.ObsSession` attached by the
        #: experiment harness (``ExperimentConfig(obs=True)``).
        self.obs = None

    # -- conveniences ---------------------------------------------------------

    @property
    def now(self) -> int:
        return self.loop.now

    @property
    def features(self) -> SchedFeatures:
        return self.scheduler.features

    @property
    def probe(self) -> Probe:
        """The scheduler's probe (a fanout unless overridden)."""
        return self.scheduler.probe

    def attach_probe(self, probe: Probe) -> None:
        """Plug a consumer into the probe fanout (profilers, checkers)."""
        root = self.scheduler.probe
        if not isinstance(root, FanoutProbe):
            raise TypeError(
                "system was built with a custom probe; pass a FanoutProbe "
                "to attach more consumers"
            )
        root.add(probe)

    def detach_probe(self, probe: Probe) -> None:
        """Remove a consumer previously attached with :meth:`attach_probe`."""
        root = self.scheduler.probe
        if isinstance(root, FanoutProbe):
            root.remove(probe)

    def cpu(self, cpu_id: int):
        return self.scheduler.cpu(cpu_id)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic tick; idempotent."""
        if not self._started:
            self._started = True
            self.loop.schedule(TICK_US, self._tick, label="tick")

    def spawn(
        self,
        spec: TaskSpec,
        on_cpu: Optional[int] = None,
        parent_cpu: Optional[int] = None,
    ) -> Task:
        """Create a task from a spec and place it.

        ``on_cpu`` forces the initial runqueue (experiment setup);
        otherwise fork placement runs from ``parent_cpu`` (default CPU 0,
        where a shell would run).
        """
        self.start()
        task = self._create_task(spec)
        if on_cpu is not None:
            self.scheduler.register_task(task)
            self.scheduler.enqueue_task_on(task, on_cpu, self.now)
        else:
            origin = parent_cpu if parent_cpu is not None else 0
            self.scheduler.place_new_task(task, origin, self.now)
        self._drain()
        return task

    def _create_task(self, spec: TaskSpec) -> Task:
        task = Task(
            name=spec.name,
            nice=spec.nice,
            program=spec.program(),
            allowed_cpus=spec.allowed_cpus,
            now=self.now,
        )
        manager = self.scheduler.cgroups
        if spec.cgroup is not None:
            try:
                group = manager.group(spec.cgroup)
            except KeyError:
                group = manager.create_group(spec.cgroup)
        elif spec.tty is not None:
            group = manager.autogroup_for_tty(spec.tty)
        else:
            group = manager.root
        manager.attach(task, group)
        self.spawned.append(task)
        return task

    # -- running -----------------------------------------------------------------

    def run_for(self, duration_us: int) -> None:
        """Advance virtual time by ``duration_us``."""
        self.start()
        self.loop.run_until(self.now + duration_us)

    def run_until(self, deadline_us: int) -> None:
        """Advance virtual time to an absolute deadline."""
        self.start()
        self.loop.run_until(deadline_us)

    def run_until_done(
        self, tasks: List[Task], deadline_us: int
    ) -> bool:
        """Run until every listed task exited; False on deadline."""
        self.start()
        return self.loop.run_while(
            lambda: any(t.alive for t in tasks),
            deadline_us,
            check_interval=TICK_US,
        )

    # -- hotplug --------------------------------------------------------------------

    def hotplug_cpu(self, cpu_id: int, online: bool) -> None:
        """Disable or re-enable a core through the /proc interface analog."""
        self.start()
        now = self.now
        sched = self.scheduler
        displaced: List[Task] = []
        if not online:
            cpu = sched.cpu(cpu_id)
            if cpu.rq.curr is not None:
                task = self._switch_out(cpu_id, requeue=False)
                if task is not None:
                    task.state = TaskState.BLOCKED
                    displaced.append(task)
            displaced.extend(sched.set_cpu_online(cpu_id, False, now))
            for task in displaced:
                sched.wake_task(task, None, now)
        else:
            sched.set_cpu_online(cpu_id, True, now)
        self._drain()

    # -- tick -------------------------------------------------------------------------

    def _tick(self) -> None:
        now = self.now
        self.scheduler.tick(now)
        self._drain()
        for hook in self.tick_hooks:
            hook(now)
        self.loop.schedule(TICK_US, self._tick, label="tick")

    # -- pending-work draining -----------------------------------------------------------

    def _drain(self) -> None:
        """Apply scheduler-requested dispatches and preemptions until quiet."""
        sched = self.scheduler
        for _ in range(10_000):
            dispatch, resched = sched.drain_pending()
            if not dispatch and not resched:
                return
            for cpu_id in sorted(resched):
                cpu = sched.cpu(cpu_id)
                if cpu.rq.curr is not None:
                    self._switch_out(cpu_id, requeue=True)
                self._dispatch(cpu_id)
            for cpu_id in sorted(dispatch):
                cpu = sched.cpu(cpu_id)
                if cpu.online and cpu.rq.curr is None and cpu.rq.nr_queued:
                    self._dispatch(cpu_id)
        raise SimulationError("drain did not quiesce after 10000 rounds")

    # -- context switching -----------------------------------------------------------------

    def _switch_out(self, cpu_id: int, requeue: bool) -> Optional[Task]:
        """Remove the running task from a CPU, settling phase progress."""
        cpu = self.scheduler.cpu(cpu_id)
        task = cpu.rq.curr
        if task is None:
            return None
        now = self.now
        if isinstance(task.current_phase, Run) and task.phase_started_us is not None:
            ran = max(0, now - task.phase_started_us)
            task.phase_left_us = max(0, task.phase_left_us - ran)
        if task.spinning_on is not None and task.spin_started_us is not None:
            task.stats.spin_time_us += max(0, now - task.spin_started_us)
            task.spin_started_us = None
        handle = self._phase_events.pop(cpu_id, None)
        if handle is not None:
            handle.cancel()
        self.scheduler.deschedule(cpu_id, now, requeue=requeue)
        task.phase_started_us = None
        return task

    def _dispatch(self, cpu_id: int) -> None:
        """Pick the next task for an empty CPU and start executing it."""
        task = self.scheduler.pick_next_task(cpu_id, self.now)
        if task is None:
            return
        self._begin_run(cpu_id, task)

    def _begin_run(self, cpu_id: int, task: Task) -> None:
        """Resume a freshly-dispatched task according to its phase state."""
        now = self.now
        if task.spinning_on is not None:
            obj = task.spinning_on
            acquired = False
            if isinstance(obj, SpinLock):
                acquired = obj.try_steal(task)
            elif isinstance(obj, Barrier):
                acquired = obj.has_passed(task.barrier_generation)
            elif isinstance(obj, SpinFlag):
                acquired = obj.satisfied(task.flag_threshold)
            if acquired:
                task.spinning_on = None
                self._advance(cpu_id, task)
            else:
                # Keep burning CPU; no completion event -- the spinner runs
                # until granted, released, or preempted.
                task.spin_started_us = now
            return
        if isinstance(task.current_phase, Run) and task.phase_left_us > 0:
            task.phase_started_us = now
            self._arm_phase_end(cpu_id, task, task.phase_left_us)
            return
        self._advance(cpu_id, task)

    def _arm_phase_end(self, cpu_id: int, task: Task, delay_us: int) -> None:
        handle = self.loop.schedule(
            max(delay_us, 1),
            lambda: self._phase_end(cpu_id, task),
            label=f"phase-end:{task.tid}",
        )
        self._phase_events[cpu_id] = handle

    def _phase_end(self, cpu_id: int, task: Task) -> None:
        cpu = self.scheduler.cpu(cpu_id)
        if cpu.rq.curr is not task:
            return  # stale event (the task was moved); defensive only
        self._phase_events.pop(cpu_id, None)
        task.phase_left_us = 0
        task.phase_started_us = None
        self.scheduler.account(cpu_id, self.now)
        self._advance(cpu_id, task)
        self._drain()

    # -- phase interpretation -------------------------------------------------------------------

    def _advance(self, cpu_id: int, task: Task) -> None:
        """Interpret phases for the running ``task`` until it needs the CPU
        for a while (Run / spin) or leaves it (sleep/block/exit)."""
        now = self.now
        for _ in range(_MAX_INLINE_PHASES):
            try:
                phase = next(task.program)
            except StopIteration:
                phase = Exit()
            task.current_phase = phase

            if isinstance(phase, Run):
                if phase.duration_us <= 0:
                    continue
                task.phase_left_us = phase.duration_us
                task.phase_started_us = now
                self._arm_phase_end(cpu_id, task, phase.duration_us)
                return

            if isinstance(phase, Sleep):
                self._leave_cpu(cpu_id, task, TaskState.SLEEPING)
                self.loop.schedule(
                    max(phase.duration_us, 1),
                    lambda: self._timer_wake(task),
                    label=f"wake:{task.tid}",
                )
                self._dispatch(cpu_id)
                return

            if isinstance(phase, Exit):
                self._leave_cpu(cpu_id, task, TaskState.EXITED)
                self.scheduler.task_exited(task, now)
                self._dispatch(cpu_id)
                return

            if isinstance(phase, LockAcquire):
                if phase.lock.acquire(task):
                    continue
                if phase.lock.kind == "spin":
                    task.spinning_on = phase.lock
                    task.spin_started_us = now
                    return  # spins on-CPU
                task.blocked_on = phase.lock
                self._leave_cpu(cpu_id, task, TaskState.BLOCKED)
                self._dispatch(cpu_id)
                return

            if isinstance(phase, LockRelease):
                granted = phase.lock.release(task)
                if granted is not None:
                    if phase.lock.kind == "spin":
                        self._grant_to_spinner(granted)
                    else:
                        granted.blocked_on = None
                        self.scheduler.wake_task(granted, cpu_id, now)
                continue

            if isinstance(phase, BarrierWait):
                barrier = phase.barrier
                passed, released = barrier.arrive(task)
                if passed:
                    for other in released:
                        self._release_from_barrier(other, barrier, cpu_id)
                    continue
                if barrier.mode == "spin":
                    task.spinning_on = barrier
                    task.barrier_generation = barrier.generation
                    task.spin_started_us = now
                    return  # spins on-CPU
                task.blocked_on = barrier
                self._leave_cpu(cpu_id, task, TaskState.BLOCKED)
                self._dispatch(cpu_id)
                return

            if isinstance(phase, FlagWait):
                if phase.flag.wait(task, phase.threshold):
                    continue
                task.spinning_on = phase.flag
                task.flag_threshold = phase.threshold
                task.spin_started_us = now
                return  # spins on-CPU until the flag advances

            if isinstance(phase, FlagAdvance):
                for waiter in phase.flag.advance(phase.amount):
                    self._release_spinner(waiter)
                continue

            if isinstance(phase, WaitOn):
                if phase.channel.get(task):
                    continue
                task.blocked_on = phase.channel
                self._leave_cpu(cpu_id, task, TaskState.BLOCKED)
                self._dispatch(cpu_id)
                return

            if isinstance(phase, Notify):
                waiter = phase.channel.put()
                if waiter is not None:
                    waiter.blocked_on = None
                    self.scheduler.wake_task(waiter, cpu_id, now)
                continue

            if isinstance(phase, Spawn):
                child = self._create_task(phase.spec)
                self.scheduler.place_new_task(child, cpu_id, now)
                continue

            raise SimulationError(f"unknown phase {phase!r} from {task}")
        raise SimulationError(
            f"{task} produced {_MAX_INLINE_PHASES} zero-cost phases in a row"
        )

    def _leave_cpu(self, cpu_id: int, task: Task, state: TaskState) -> None:
        """Deschedule the running task without requeuing it."""
        self.scheduler.account(cpu_id, self.now)
        handle = self._phase_events.pop(cpu_id, None)
        if handle is not None:
            handle.cancel()
        self.scheduler.deschedule(cpu_id, self.now, requeue=False)
        task.state = state
        task.phase_started_us = None

    def _grant_to_spinner(self, task: Task) -> None:
        """A running spinner just received lock ownership: resume it."""
        now = self.now
        if task.spin_started_us is not None:
            task.stats.spin_time_us += max(0, now - task.spin_started_us)
            task.spin_started_us = None
        task.spinning_on = None
        if task.cpu is None:
            raise SimulationError(f"granted spinner {task} has no CPU")
        self._advance(task.cpu, task)

    def _release_spinner(self, task: Task) -> None:
        """A spinning waiter's condition became true: resume it if on-CPU.

        Preempted spinners resume at their next dispatch (the generation /
        threshold check in :meth:`_begin_run`).
        """
        if task.state is not TaskState.RUNNING:
            return
        now = self.now
        if task.spin_started_us is not None:
            task.stats.spin_time_us += max(0, now - task.spin_started_us)
            task.spin_started_us = None
        task.spinning_on = None
        self._advance(task.cpu, task)

    def _release_from_barrier(
        self, task: Task, barrier: Barrier, waker_cpu: int
    ) -> None:
        now = self.now
        if barrier.mode == "spin":
            if task.state is TaskState.RUNNING:
                if task.spin_started_us is not None:
                    task.stats.spin_time_us += max(
                        0, now - task.spin_started_us
                    )
                    task.spin_started_us = None
                task.spinning_on = None
                self._advance(task.cpu, task)
            # A preempted spinner passes the generation check when it next
            # runs (_begin_run).
            return
        task.blocked_on = None
        self.scheduler.wake_task(task, waker_cpu, now)

    def _timer_wake(self, task: Task) -> None:
        if task.state is not TaskState.SLEEPING:
            return
        self.scheduler.wake_task(task, task.prev_cpu, self.now)
        self._drain()

    def __repr__(self) -> str:
        return (
            f"System(now={self.now}us, cpus={self.topology.num_cpus}, "
            f"tasks={len(self.scheduler.tasks)})"
        )

"""repro: a reproduction of "The Linux Scheduler: a Decade of Wasted Cores"
(Lozi et al., EuroSys 2016).

The package simulates a multicore NUMA machine running a faithful model of
Linux's CFS scheduler -- per-core runqueues on a red-black tree, the
weight x utilization / autogroup load metric, hierarchical scheduling
domains, the paper's Algorithm 1 load balancer, cache-affine wakeup
placement, NOHZ idle balancing and CPU hotplug -- with the paper's four
performance bugs implemented *as behaviors* and their fixes as feature
flags:

>>> from repro import System, SchedFeatures, amd_bulldozer_64
>>> system = System(amd_bulldozer_64(), SchedFeatures())            # buggy
>>> system = System(amd_bulldozer_64(),
...                 SchedFeatures().with_fixes("all"))              # fixed

On top of the simulator sit the paper's two contributed tools -- the
online sanity checker (Algorithm 2) and the scheduling visualizer -- plus
the workload models (NAS, kernel make, R, a TPC-H database) and one
experiment driver per table/figure in ``repro.experiments``.
"""

from repro.core.bugs import BUGS, Bug
from repro.core.invariant import Violation, find_violations
from repro.core.offline import find_trace_violations, load_trace, save_trace
from repro.core.sanity_checker import BugReport, SanityChecker
from repro.obs import MetricsRegistry, ObsSession
from repro.sched.features import ALL_FIXED, MAINLINE, SchedFeatures
from repro.sched.task import Task, TaskState
from repro.sim.system import System
from repro.sim.timebase import MS, SEC, TICK_US, US
from repro.stats.metrics import IdleOverloadSampler, summarize_tasks
from repro.topology import (
    Interconnect,
    MachineTopology,
    amd_bulldozer_64,
    single_node,
    two_nodes,
)
from repro.viz.events import TraceBuffer, TraceProbe
from repro.viz.heatmap import HeatmapBuilder, render_ascii_heatmap
from repro.workloads.base import TaskSpec

__version__ = "1.0.0"

__all__ = [
    "ALL_FIXED",
    "BUGS",
    "Bug",
    "BugReport",
    "HeatmapBuilder",
    "IdleOverloadSampler",
    "Interconnect",
    "MAINLINE",
    "MS",
    "MachineTopology",
    "MetricsRegistry",
    "ObsSession",
    "SEC",
    "SanityChecker",
    "SchedFeatures",
    "System",
    "TICK_US",
    "Task",
    "TaskSpec",
    "TaskState",
    "TraceBuffer",
    "TraceProbe",
    "US",
    "Violation",
    "amd_bulldozer_64",
    "find_trace_violations",
    "find_violations",
    "load_trace",
    "render_ascii_heatmap",
    "save_trace",
    "single_node",
    "summarize_tasks",
    "two_nodes",
    "__version__",
]

"""Command-line interface: run the paper's experiments from a terminal.

::

    python -m repro bugs                     # Table 4 (registry)
    python -m repro topology                 # Table 5 / Figures 1 & 4
    python -m repro table1 [--scale 0.2] [--apps lu cg]
    python -m repro table2 [--scale 1.0] [--runs 3]
    python -m repro table3 [--scale 0.2] [--apps ...]
    python -m repro figure2 [--scale 0.5] [--svg-dir DIR]
    python -m repro figure3 [--scale 1.0] [--svg-dir DIR]
    python -m repro figure5 [--svg-dir DIR]
    python -m repro overhead [--threads 512]
    python -m repro demo <group-imbalance|group-construction|
                          overload-on-wakeup|missing-domains>
                         [--sanitize] [--effect-check] [--alloc-check]
    python -m repro trace <bug> [--variant buggy|fixed] [--out trace.json]
    python -m repro metrics <bug> [--variant buggy|fixed]
    python -m repro report [--quick] [-j N] [--no-cache] [--cache-dir DIR]
                           [--utilization-out FILE] [--digests-out FILE]
    python -m repro lint [paths ...] [--format json|text|sarif]
                         [--sarif FILE] [--baseline FILE]
                         [--effects-report FILE] [--cost-report FILE]
                         [--write-cost-baseline] [--profile-weights FILE]
    python -m repro bench [--quick] [--compare] [--only NAME] [-j N]
                          [--variant baseline|fast|vec|vec-fallback]
                          [--out BENCH_sim.json] [--check-digests [FILE]]
                          [--profile] [--cost-baseline FILE]
                          [--trend [FILE]]
    python -m repro slo run [--registry PATH] [--scenario NAME] [--scale F]
                            [-j N] [--json FILE]
    python -m repro slo check [--baseline SLO_baseline.json]
                              [--write-baseline] [-j N]
    python -m repro replay record [--scenario NAME] [--scale F] [--out DIR]
    python -m repro replay diff FILE [FILE ...]
    python -m repro --version
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


def _cmd_bugs(args) -> int:
    from repro.experiments.table4 import bug_descriptions, format_table4

    print(format_table4())
    print()
    print(bug_descriptions())
    return 0


def _cmd_topology(args) -> int:
    from repro.experiments.figures_topology import (
        format_bulldozer_domains,
        format_figure1,
        format_figure4,
        format_table5,
    )

    print(format_table5())
    print()
    print(format_figure4())
    print()
    print(format_figure1())
    print()
    print("domains of cpu 0 on the experimental machine:")
    print(format_bulldozer_domains(0))
    return 0


def _cmd_table1(args) -> int:
    from repro.experiments.table1 import format_table1, run_table1

    rows = run_table1(
        scale=args.scale, apps=args.apps or None,
        obs=getattr(args, "obs", False),
    )
    print(format_table1(rows))
    return 0


def _cmd_table2(args) -> int:
    from repro.experiments.table2 import format_table2, run_table2

    rows = run_table2(scale=args.scale, runs=args.runs)
    print(format_table2(rows))
    return 0


def _cmd_table3(args) -> int:
    from repro.experiments.table3 import format_table3, run_table3

    rows = run_table3(scale=args.scale, apps=args.apps or None)
    print(format_table3(rows))
    return 0


def _cmd_figure2(args) -> int:
    from repro.experiments.figure2 import render_figure2, run_figure2

    result = run_figure2(scale=args.scale)
    print(render_figure2(result, svg_dir=args.svg_dir))
    return 0


def _cmd_figure3(args) -> int:
    from repro.experiments.figure3 import render_figure3, run_figure3

    result = run_figure3(scale=args.scale)
    print(render_figure3(result, svg_dir=args.svg_dir))
    return 0


def _cmd_figure5(args) -> int:
    from repro.experiments.figure5 import render_figure5, run_figure5

    result = run_figure5()
    print(render_figure5(result, svg_dir=args.svg_dir))
    return 0


def _cmd_overhead(args) -> int:
    from repro.experiments.overhead import format_overhead, run_overhead

    result = run_overhead(threads=args.threads)
    print(format_overhead(result))
    return 0


def _cmd_demo(args) -> int:
    """Run one bug's minimal scenario live, with the sanity checker on."""
    from repro.experiments.scenarios import build_bug_scenario
    from repro.stats.metrics import node_busy_times

    transform = None
    if args.sanitize:
        transform = lambda f: f.with_sanitizer()  # noqa: E731

    alloc_session = None
    if args.alloc_check:
        from repro.analysis.alloctrack import AllocCheckSession

        # The demos run the scalar mainline by default; the allocation
        # declarations cover the vectorized mirror's roots too, so the
        # checked run enables it (digest-identical to the scalar run by
        # the bench cross-variant gate).
        prev = transform
        if prev is None:
            transform = lambda f: f.with_vectorized()  # noqa: E731
        else:
            transform = lambda f: prev(f).with_vectorized()  # noqa: E731
        alloc_session = AllocCheckSession()

    effect_session = None
    if args.effect_check:
        from repro.analysis.effectcheck import EffectCheckSession

        effect_session = EffectCheckSession()
        effect_session.install()
    if alloc_session is not None:
        alloc_session.install()
    try:
        for variant in ("buggy", "fixed"):
            scenario = build_bug_scenario(
                args.bug, variant, features_transform=transform
            )
            scenario.run()
            system = scenario.system
            print(f"--- {scenario.bug} [{variant}]")
            print(f"  {system.scheduler.features.describe()}")
            busy = node_busy_times(system)
            print(f"  node busy core-seconds: "
                  f"{ {n: round(v / 1e6, 2) for n, v in busy.items()} }")
            print(f"  idle-while-overloaded fraction: "
                  f"{scenario.sampler.violation_fraction:.1%}")
            print(f"  {scenario.checker.summary()}")
            print()
    finally:
        if alloc_session is not None:
            alloc_session.uninstall()
        if effect_session is not None:
            effect_session.uninstall()
    if effect_session is not None:
        print(effect_session.summary())
        effect_session.check()  # raises EffectDivergence on any divergence
    if alloc_session is not None:
        print(alloc_session.summary())
        alloc_session.check()  # raises AllocDivergence on any divergence
    return 0


def _cmd_trace(args) -> int:
    """Capture one bug scenario as a Chrome trace-event / Perfetto file."""
    from repro.experiments.scenarios import build_bug_scenario
    from repro.obs import ObsSession

    holder = {}

    def instrument(system):
        holder["obs"] = ObsSession.attach_to(system, trace=True)

    scenario = build_bug_scenario(args.bug, args.variant, instrument=instrument)
    obs = holder["obs"]
    try:
        scenario.run(args.duration_us)
    finally:
        obs.close()
    events = obs.write_chrome_trace(args.out)
    print(
        f"{scenario.bug} [{args.variant}]: {events} trace events "
        f"({scenario.system.now / 1e6:.2f}s simulated) -> {args.out}"
    )
    print("open in https://ui.perfetto.dev or chrome://tracing")
    print(f"  {scenario.checker.summary()}")
    print(f"  {obs.recorder.latency_line()}")
    return 0


def _cmd_metrics(args) -> int:
    """Run one bug scenario and print its metrics table."""
    from repro.experiments.scenarios import build_bug_scenario
    from repro.obs import ObsSession

    holder = {}

    def instrument(system):
        holder["obs"] = ObsSession.attach_to(system, trace=False)

    scenario = build_bug_scenario(args.bug, args.variant, instrument=instrument)
    obs = holder["obs"]
    try:
        scenario.run(args.duration_us)
    finally:
        obs.close()
    print(f"--- {scenario.bug} [{args.variant}] "
          f"({scenario.system.now / 1e6:.2f}s simulated)")
    print(obs.snapshot().render())
    print(f"  {scenario.checker.summary()}")
    print(f"  {obs.recorder.latency_line()}")
    return 0


def _resolve_cache(args):
    """The ResultCache the CLI flags ask for (None when disabled)."""
    from repro.perf.orchestrator import ResultCache

    if getattr(args, "no_cache", False):
        return None
    return ResultCache(root=args.cache_dir)


def _cmd_report(args) -> int:
    """Regenerate a full markdown report of every experiment.

    Trials fan out across ``--jobs`` worker processes and previously
    computed rows are answered from the content-addressed cache under
    ``.repro-cache/`` (``--no-cache`` disables it); the rendered report
    is byte-identical for any ``--jobs`` value.
    """
    import json

    from repro.experiments.reportgen import QUICK_SCALE, generate_report

    scale = QUICK_SCALE if args.quick else args.scale

    def progress(done: int, total: int, outcome) -> None:
        origin = "cache" if outcome.cached else outcome.worker
        print(
            f"[{done}/{total}] {outcome.spec.label} "
            f"({origin}, {outcome.wall_seconds:.2f}s)",
            file=sys.stderr,
        )

    result = generate_report(
        scale=scale,
        jobs=args.jobs,
        cache=_resolve_cache(args),
        progress=progress,
    )
    print(result.stats.summary(), file=sys.stderr)
    if args.utilization_out:
        with open(args.utilization_out, "w", encoding="utf-8") as f:
            json.dump(result.stats.to_json(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"utilization summary written to {args.utilization_out}",
              file=sys.stderr)
    if args.digests_out:
        with open(args.digests_out, "w", encoding="utf-8") as f:
            f.write("\n".join(result.digests) + "\n")
        print(f"schedule digests written to {args.digests_out}",
              file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(result.markdown)
        print(f"report written to {args.output}")
    else:
        print(result.markdown)
    return 0


def _cmd_lint(args) -> int:
    """Run the offline static invariant checker (see repro.analysis)."""
    from repro.analysis.runner import run_lint

    return run_lint(
        paths=args.paths or None,
        fmt=args.format,
        baseline_path=args.baseline,
        write_baseline=args.write_baseline,
        sarif_path=args.sarif,
        jobs=args.jobs,
        effects_report=args.effects_report,
        cost_report=args.cost_report,
        write_cost_baseline=args.write_cost_baseline,
        profile_weights_path=args.profile_weights,
    )


def _cmd_bench(args) -> int:
    """Run the deterministic macro-benchmarks (see repro.perf)."""
    from repro.perf import (
        append_run,
        benchmark_names,
        check_digests,
        format_results,
        run_benchmark,
    )

    if args.trend is not None:
        from repro.perf import format_trend, load_trajectory

        try:
            trajectory = load_trajectory(args.trend)
        except (OSError, ValueError) as exc:
            print(f"cannot read trajectory {args.trend}: {exc}",
                  file=sys.stderr)
            return 2
        print(format_trend(trajectory))
        return 0

    names = args.only or benchmark_names()
    unknown = [n for n in names if n not in benchmark_names()]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)} "
              f"(known: {', '.join(benchmark_names())})", file=sys.stderr)
        return 2
    cross_check = args.check_digests is not None
    results = []
    for name in names:
        print(f"running {name}{' (quick)' if args.quick else ''} ...",
              file=sys.stderr)
        results.append(
            run_benchmark(
                name, quick=args.quick, compare=args.compare,
                jobs=args.jobs, variant=args.variant,
                check_digests=cross_check,
            )
        )
    print(format_results(results))

    status = 0
    if any(r.digest_match is False for r in results):
        status = 1
    if cross_check:
        bad = [r.name for r in results if r.digest_match is False]
        if bad:
            print(f"digest cross-check FAILED: {', '.join(bad)}")
        else:
            print("digest cross-check passed: all variants identical")
    if isinstance(args.check_digests, str) and args.check_digests:
        mismatches = check_digests(args.check_digests, results)
        for name, stored, fresh in mismatches:
            print(
                f"DIGEST DRIFT: {name}: stored {stored[:16]}... != "
                f"fresh {fresh[:16]}... (schedule changed since "
                f"{args.check_digests})"
            )
            status = 1
        if not mismatches:
            print(f"digests match {args.check_digests}")
    if args.profile:
        import json
        from pathlib import Path

        from repro.perf import format_profile_comparison, profile_benchmark

        base = Path(args.out) if args.out else Path("bench")
        baseline_path = Path(args.cost_baseline)
        baseline = None
        if baseline_path.exists():
            with baseline_path.open() as fh:
                baseline = json.load(fh)
        for name in names:
            print(f"profiling {name} ...", file=sys.stderr)
            prof = profile_benchmark(
                name, quick=args.quick, jobs=args.jobs,
                variant=args.variant,
            )
            target = base.with_name(f"{base.stem}.profile.{name}.txt")
            target.write_text(prof.text)
            print(f"wrote profile to {target}")
            wtarget = base.with_name(f"{base.stem}.profile.{name}.json")
            with wtarget.open("w") as fh:
                json.dump(prof.weights, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote profile weights to {wtarget} (commit via repro "
                  f"lint --write-cost-baseline --profile-weights {wtarget})")
            if baseline is not None:
                print(f"--- {name} ({prof.variant}) ---")
                print(format_profile_comparison(prof.weights, baseline))
    if args.out:
        append_run(args.out, results, label=args.label, jobs=args.jobs)
        print(f"appended run to {args.out}")
    return status


def _slo_progress(done: int, total: int, outcome) -> None:
    origin = "cache" if outcome.cached else outcome.worker
    print(
        f"[{done}/{total}] {outcome.spec.label} "
        f"({origin}, {outcome.wall_seconds:.2f}s)",
        file=sys.stderr,
    )


def _load_slo_registry(args):
    """The scenario set the slo/replay flags select."""
    from repro.slo.registry import find_scenarios, load_registry

    scenarios = load_registry(args.registry or None)
    if args.scenario:
        scenarios = find_scenarios(scenarios, args.scenario)
    return scenarios


def _cmd_slo_run(args) -> int:
    """Run the scenario registry and print per-scenario SLO verdicts."""
    import json

    from repro.slo.registry import run_registry

    scenarios = _load_slo_registry(args)
    report, run = run_registry(
        scenarios,
        scale=args.scale,
        jobs=args.jobs,
        cache=_resolve_cache(args),
        progress=_slo_progress if args.progress else None,
    )
    print(run.stats.summary(), file=sys.stderr)
    print(report.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report.to_json(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"SLO report written to {args.json}", file=sys.stderr)
    return 0


def _cmd_slo_check(args) -> int:
    """Gate: compare current SLO verdicts against the committed baseline."""
    import json

    from repro.slo.registry import run_registry

    scenarios = _load_slo_registry(args)
    report, _ = run_registry(
        scenarios,
        scale=args.scale,
        jobs=args.jobs,
        cache=_resolve_cache(args),
    )
    verdicts = report.verdicts()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report.to_json(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"SLO report written to {args.json}", file=sys.stderr)
    if args.write_baseline:
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(
                {"version": 1, "scale": args.scale, "verdicts": verdicts},
                f, indent=2, sort_keys=True,
            )
            f.write("\n")
        print(f"baseline written to {args.baseline}")
        return 0
    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; run with --write-baseline "
              "to record one", file=sys.stderr)
        return 2
    expected = baseline.get("verdicts", {})
    status = 0
    for key in sorted(set(expected) | set(verdicts)):
        if key not in verdicts:
            print(f"SLO REGRESSION: {key} in baseline but not evaluated")
            status = 1
        elif key not in expected:
            print(f"SLO REGRESSION: {key} evaluated but not in baseline "
                  "(re-baseline with --write-baseline)")
            status = 1
        elif expected[key] != verdicts[key]:
            was = "PASS" if expected[key] else "FAIL"
            now = "PASS" if verdicts[key] else "FAIL"
            print(f"SLO REGRESSION: {key}: baseline {was}, now {now}")
            status = 1
    if status == 0:
        print(f"SLO verdicts match {args.baseline} "
              f"({len(verdicts)} scenario variants)")
    else:
        print(report.render())
    return status


def _cmd_replay_record(args) -> int:
    """Record registry scenarios' runs as versioned JSONL trace files."""
    from repro.slo.registry import compile_specs
    from repro.slo.replay import record_trace, trace_filename

    scenarios = _load_slo_registry(args)
    os.makedirs(args.out, exist_ok=True)
    count = 0
    for scenario in scenarios:
        for spec in compile_specs(scenario, scale=args.scale, record=True):
            path = os.path.join(args.out, trace_filename(spec))
            record_trace(spec, path)
            print(f"recorded {path}")
            count += 1
    print(f"{count} recording(s) written to {args.out}")
    return 0


def _cmd_replay_diff(args) -> int:
    """Re-drive recordings through the engine; exit 1 on any divergence."""
    from repro.slo.replay import replay_trace

    status = 0
    for path in args.traces:
        diff = replay_trace(path)
        print(diff.format())
        if diff.divergent:
            status = 1
    return status


def _version() -> str:
    """Package version, from installed metadata when available."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from repro import __version__

        return __version__


def _bug_name(value: str) -> str:
    """argparse type: normalize/validate a bug name (either spelling)."""
    from repro.experiments.scenarios import canonical_bug_name

    try:
        return canonical_bug_name(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'The Linux Scheduler: a Decade of Wasted Cores' "
            "(EuroSys 2016)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("bugs", help="Table 4: the bug registry").set_defaults(
        func=_cmd_bugs
    )
    sub.add_parser(
        "topology", help="Table 5 / Figures 1 and 4: the machine"
    ).set_defaults(func=_cmd_topology)

    for name, func, default_scale, has_apps in (
        ("table1", _cmd_table1, 0.2, True),
        ("table3", _cmd_table3, 0.2, True),
    ):
        p = sub.add_parser(name, help=f"reproduce {name}")
        p.add_argument("--scale", type=float, default=default_scale)
        if has_apps:
            p.add_argument("--apps", nargs="*", default=None)
        if name == "table1":
            p.add_argument(
                "--obs", action="store_true",
                help="attach the obs registry and report wakeup-to-run "
                "latency percentiles",
            )
        p.set_defaults(func=func)

    p = sub.add_parser("table2", help="reproduce table 2 (TPC-H)")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--runs", type=int, default=1)
    p.set_defaults(func=_cmd_table2)

    for name, func, default_scale in (
        ("figure2", _cmd_figure2, 0.5),
        ("figure3", _cmd_figure3, 1.0),
    ):
        p = sub.add_parser(name, help=f"reproduce {name}")
        p.add_argument("--scale", type=float, default=default_scale)
        p.add_argument("--svg-dir", default=None)
        p.set_defaults(func=func)

    p = sub.add_parser("figure5", help="reproduce figure 5")
    p.add_argument("--svg-dir", default=None)
    p.set_defaults(func=_cmd_figure5)

    p = sub.add_parser("overhead", help="sanity-checker overhead")
    p.add_argument("--threads", type=int, default=512)
    p.set_defaults(func=_cmd_overhead)

    p = sub.add_parser(
        "report", help="regenerate a full markdown report of every "
        "experiment"
    )
    p.add_argument("--scale", type=float, default=0.2)
    p.add_argument("--output", default=None)
    p.add_argument(
        "--quick", action="store_true",
        help="shrink every experiment to smoke-run scale (CI gate)",
    )
    p.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="worker processes for trial execution (default: REPRO_JOBS "
        "or serial; 0 = one per core); output is byte-identical for "
        "any N",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="recompute every trial instead of consulting the "
        "content-addressed result cache",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: REPRO_CACHE_DIR or "
        ".repro-cache)",
    )
    p.add_argument(
        "--utilization-out", default=None, metavar="FILE",
        help="write the orchestrator utilization summary as JSON to FILE",
    )
    p.add_argument(
        "--digests-out", default=None, metavar="FILE",
        help="write every trial's schedule digest (spec order) to FILE; "
        "diffing two runs' files proves -jN equivalence",
    )
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "lint",
        help="offline static invariant checker (determinism, layering, "
        "tracepoints, flag discipline)",
    )
    p.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to check (default: the repro package)",
    )
    p.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text"
    )
    p.add_argument(
        "--sarif", default=None, metavar="FILE",
        help="also write a SARIF 2.1.0 log of every finding to FILE",
    )
    p.add_argument(
        "--baseline", default=None,
        help="baseline file of grandfathered findings (default: "
        "lint-baseline.json in the working directory, if present)",
    )
    p.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    p.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="shard per-file rules across N worker processes (0 = one "
        "per core; default REPRO_JOBS or serial); stdout is "
        "byte-identical to a serial run",
    )
    p.add_argument(
        "--effects-report", default=None, metavar="FILE",
        help="write the vectorization-safety report (the pure-hot-path "
        "rule's effect classification of the fast-path closure) to FILE",
    )
    p.add_argument(
        "--cost-report", default=None, metavar="FILE",
        help="write the hot-path cost & allocation report (per-root "
        "cost expressions, allocation sites with provenance, ranked "
        "scalar-residue table) to FILE",
    )
    p.add_argument(
        "--write-cost-baseline", action="store_true",
        help="rewrite COST_baseline.json from the fresh analysis "
        "(committed profile weights are carried over); use when a "
        "complexity change is intentional and justified in the PR",
    )
    p.add_argument(
        "--profile-weights", default=None, metavar="FILE",
        help="with --write-cost-baseline: replace the carried-over "
        "profile weights with the harvested qualname->tottime map FILE "
        "(written by repro bench --profile as "
        "<out-stem>.profile.<bench>.json)",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "bench",
        help="deterministic macro-benchmarks of the simulator fast paths",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="shortened horizons for CI smoke runs",
    )
    p.add_argument(
        "--compare", action="store_true",
        help="also measure with the fast paths disabled and report the "
        "speedup plus a fast-vs-baseline schedule-digest check",
    )
    p.add_argument(
        "--only", nargs="*", default=None, metavar="NAME",
        help="run only these benchmarks (default: all)",
    )
    p.add_argument(
        "--out", default=None, metavar="FILE",
        help="append results to this BENCH_*.json trajectory file",
    )
    p.add_argument(
        "--check-digests", nargs="?", const=True, default=None,
        metavar="FILE",
        help="recompute every benchmark's schedule digest in all four "
        "variants (baseline, fast, vec, vec-fallback) and require them "
        "identical; with FILE, additionally compare against the most "
        "recent run stored there; exit 1 on any mismatch",
    )
    p.add_argument(
        "--variant", default="vec",
        choices=("baseline", "fast", "vec", "vec-fallback"),
        help="the variant the primary wall-clock measurement runs "
        "(default: vec, the array-backed vectorized core)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="rerun each benchmark under cProfile, write the top-20 "
        "cumulative report and the harvested per-function weights next "
        "to --out (<out-stem>.profile.<bench>.{txt,json}), and print a "
        "per-hot-root comparison against the committed baseline weights",
    )
    p.add_argument(
        "--cost-baseline", default="COST_baseline.json", metavar="FILE",
        help="the committed cost baseline --profile compares harvested "
        "weights against (default: COST_baseline.json)",
    )
    p.add_argument(
        "--trend", nargs="?", const="BENCH_sim.json", default=None,
        metavar="FILE",
        help="print the per-benchmark history table (run id, variant, "
        "wall seconds, speedup, digest_match) of a BENCH_*.json "
        "trajectory and exit without running anything "
        "(default FILE: BENCH_sim.json)",
    )
    p.add_argument(
        "--label", default="",
        help="label recorded with the appended run (e.g. a commit sha)",
    )
    p.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the report_wall benchmark's fast "
        "mode (1 = one per core there); recorded in --out trajectories",
    )
    p.set_defaults(func=_cmd_bench)

    def _slo_common(p, with_cache: bool = True) -> None:
        p.add_argument(
            "--registry", nargs="*", default=None, metavar="PATH",
            help="scenario TOML files or directories (default: the "
            "shipped registry under repro/slo/scenarios/)",
        )
        p.add_argument(
            "--scenario", nargs="*", default=None, metavar="NAME",
            help="run only these scenarios (default: all in the registry)",
        )
        p.add_argument(
            "--scale", type=float, default=1.0,
            help="multiply every scenario's duration by this factor",
        )
        if with_cache:
            p.add_argument(
                "-j", "--jobs", type=int, default=None, metavar="N",
                help="worker processes (default: REPRO_JOBS or serial; "
                "0 = one per core); verdicts are identical for any N",
            )
            p.add_argument("--no-cache", action="store_true")
            p.add_argument("--cache-dir", default=None, metavar="DIR")

    p = sub.add_parser(
        "slo", help="SLO reports: percentile/jitter verdicts per scenario"
    )
    slo_sub = p.add_subparsers(dest="slo_command", required=True)

    p = slo_sub.add_parser(
        "run", help="run the scenario registry and print SLO verdicts"
    )
    _slo_common(p)
    p.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the full SLO report as JSON to FILE",
    )
    p.add_argument(
        "--progress", action="store_true",
        help="print per-trial progress to stderr",
    )
    p.set_defaults(func=_cmd_slo_run)

    p = slo_sub.add_parser(
        "check", help="fail when SLO verdicts drift from the baseline"
    )
    _slo_common(p)
    p.add_argument(
        "--baseline", default="SLO_baseline.json", metavar="FILE",
        help="committed verdict baseline (default: SLO_baseline.json)",
    )
    p.add_argument(
        "--write-baseline", action="store_true",
        help="record current verdicts as the new baseline and exit 0",
    )
    p.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the full SLO report as JSON to FILE",
    )
    p.set_defaults(func=_cmd_slo_check)

    p = sub.add_parser(
        "replay", help="record scheduler traces and regression-diff replays"
    )
    replay_sub = p.add_subparsers(dest="replay_command", required=True)

    p = replay_sub.add_parser(
        "record", help="record registry scenarios to JSONL trace files"
    )
    _slo_common(p, with_cache=False)
    p.add_argument(
        "--out", default="slo-traces", metavar="DIR",
        help="directory for the .trace.jsonl recordings",
    )
    p.set_defaults(func=_cmd_replay_record)

    p = replay_sub.add_parser(
        "diff", help="re-drive recordings through the engine and diff"
    )
    p.add_argument("traces", nargs="+", metavar="FILE")
    p.set_defaults(func=_cmd_replay_diff)

    p = sub.add_parser("demo", help="run one bug's live demo")
    p.add_argument("bug", type=_bug_name, metavar="bug")
    p.add_argument(
        "--sanitize", action="store_true",
        help="run with the coherence sanitizer on: every fast-path memo "
        "hit is cross-checked against a from-scratch recompute",
    )
    p.add_argument(
        "--effect-check", action="store_true",
        help="run with the effect sanitizer on: every attribute write to "
        "scheduler-state objects is cross-checked against the static "
        "effect summaries; any undeclared write raises",
    )
    p.add_argument(
        "--alloc-check", action="store_true",
        help="run with the allocation tracker on (vectorized features): "
        "observed allocations inside hot-root frames are cross-checked "
        "against each root's declared class in repro.sched.allocdecl; "
        "any allocation in a declared alloc-free root raises",
    )
    p.set_defaults(func=_cmd_demo)

    for name, func, help_text in (
        ("trace", _cmd_trace,
         "capture one bug scenario as a Perfetto/Chrome trace"),
        ("metrics", _cmd_metrics,
         "run one bug scenario and print its metrics table"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("bug", type=_bug_name, metavar="bug")
        p.add_argument(
            "--variant", choices=["buggy", "fixed"], default="buggy"
        )
        p.add_argument(
            "--duration-us", type=int, default=None,
            help="simulated time to run (default: the scenario's 1s)",
        )
        if name == "trace":
            p.add_argument(
                "--out", default="trace.json",
                help="output path for the trace-event JSON",
            )
        p.set_defaults(func=func)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.func(args))
    except BrokenPipeError:
        # Output piped into head/grep and the reader went away first; the
        # conventional quiet exit (subcommands like lint compose in shell
        # pipelines and pre-commit hooks).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

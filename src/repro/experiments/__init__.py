"""Experiment drivers: one module per table/figure of the paper.

Every driver exposes a ``run_*`` function returning a structured result and
a ``format_*`` helper that prints the paper-style table.  The benchmark
suite under ``benchmarks/`` wraps these; ``EXPERIMENTS.md`` records
paper-vs-measured values.

Scaling: the simulations are sized via a ``scale`` parameter so the full
suite runs in minutes.  Factors and percentages are scale-invariant (they
compare two configurations of the same workload).
"""

from repro.experiments.harness import ExperimentConfig, averaged, quick_scale
from repro.experiments.report import Table, format_table

__all__ = [
    "ExperimentConfig",
    "Table",
    "averaged",
    "format_table",
    "quick_scale",
]

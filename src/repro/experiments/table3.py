"""Table 3: NAS applications under the Missing Scheduling Domains bug.

Paper setup: one core is disabled and re-enabled through the /proc
interface, after which the cross-node scheduling domains are gone.  Every
NAS application is then launched with 64 threads (the machine default);
all threads end up on the parent's node (one node instead of eight).  The
expected slowdown is 8x, but spin-synchronization drives lu to 138x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import ExperimentConfig, speedup
from repro.experiments.report import Table
from repro.sched.features import SchedFeatures
from repro.sim.timebase import SEC
from repro.workloads.nas import all_nas_names, nas_app

#: The core the experiment disables and re-enables.
HOTPLUGGED_CPU = 9


@dataclass
class Table3Row:
    """One application's times under both configurations."""

    app: str
    time_with_bug_s: float
    time_without_bug_s: float
    timed_out: bool = False

    @property
    def speedup(self) -> float:
        """Buggy time over fixed time."""
        return speedup(self.time_with_bug_s, self.time_without_bug_s)


def run_nas_after_hotplug(
    config: ExperimentConfig,
    app_name: str,
    nr_threads: Optional[int] = None,
) -> tuple:
    """Disable+re-enable a core, launch the app; (seconds, timed_out)."""
    system = config.build_system()
    topo = system.topology
    if nr_threads is None:
        nr_threads = topo.num_cpus
    system.hotplug_cpu(HOTPLUGGED_CPU, False)
    system.hotplug_cpu(HOTPLUGGED_CPU, True)
    app = nas_app(
        app_name, nr_threads, seed=config.seed, scale=config.scale
    )
    # All threads fork from the sshd-spawned shell on node 0.
    tasks = [system.spawn(spec, parent_cpu=0) for spec in app.thread_specs()]
    done = system.run_until_done(tasks, config.deadline_us)
    return system.now / SEC, not done


def run_table3(
    scale: float = 0.1,
    apps: Optional[Sequence[str]] = None,
    seed: int = 42,
    deadline_us: int = 900 * SEC,
) -> List[Table3Row]:
    rows: List[Table3Row] = []
    buggy = ExperimentConfig(
        SchedFeatures().without_autogroup(),
        seed=seed, scale=scale, deadline_us=deadline_us,
    )
    fixed = buggy.with_features(
        SchedFeatures().with_fixes("missing_domains").without_autogroup()
    )
    for app_name in apps or all_nas_names():
        t_bug, timeout_bug = run_nas_after_hotplug(buggy, app_name)
        t_fix, _ = run_nas_after_hotplug(fixed, app_name)
        rows.append(Table3Row(app_name, t_bug, t_fix, timed_out=timeout_bug))
    return rows


#: Speedup factors from the paper's Table 3.
PAPER_SPEEDUPS: Dict[str, float] = {
    "bt": 5.24, "cg": 24.9, "ep": 4.0, "ft": 7.69, "is": 5.36,
    "lu": 137.59, "mg": 9.03, "sp": 9.06, "ua": 64.27,
}


def format_table3(rows: List[Table3Row]) -> str:
    """Render the reproduced Table 3 with the paper's factors."""
    table = Table(
        "Table 3: NAS (64 threads) with the Missing Scheduling Domains bug "
        "(after a core disable/re-enable)",
        ["app", "time w/ bug (s)", "time w/o bug (s)", "speedup (x)",
         "paper (x)"],
    )
    for row in rows:
        bug_time = f"{row.time_with_bug_s:.3f}"
        if row.timed_out:
            bug_time = f">={bug_time}"
        table.add_row(
            row.app,
            bug_time,
            f"{row.time_without_bug_s:.3f}",
            f"{row.speedup:.2f}",
            f"{PAPER_SPEEDUPS.get(row.app, float('nan')):.2f}",
        )
    table.add_note(
        "threads run on one node instead of eight under the bug; factors "
        "beyond 8x are spin-synchronization waste (lu/ua extremes)"
    )
    return table.render()

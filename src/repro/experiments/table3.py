"""Table 3: NAS applications under the Missing Scheduling Domains bug.

Paper setup: one core is disabled and re-enabled through the /proc
interface, after which the cross-node scheduling domains are gone.  Every
NAS application is then launched with 64 threads (the machine default);
all threads end up on the parent's node (one node instead of eight).  The
expected slowdown is 8x, but spin-synchronization drives lu to 138x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import (
    ExperimentConfig,
    schedule_digest,
    speedup,
    system_stats,
)
from repro.experiments.report import Table
from repro.perf.orchestrator import (
    ResultCache,
    TrialOutcome,
    TrialResult,
    TrialSpec,
    build_features,
    feature_tokens,
    run_trials,
)
from repro.sched.features import SchedFeatures
from repro.sim.timebase import SEC
from repro.workloads.nas import all_nas_names, nas_app

#: The core the experiment disables and re-enables.
HOTPLUGGED_CPU = 9

#: The orchestrator reference to this module's trial function.
TRIAL_KIND = "repro.experiments.table3:nas_hotplug_trial"


@dataclass
class Table3Row:
    """One application's times under both configurations."""

    app: str
    time_with_bug_s: float
    time_without_bug_s: float
    timed_out: bool = False

    @property
    def speedup(self) -> float:
        """Buggy time over fixed time."""
        return speedup(self.time_with_bug_s, self.time_without_bug_s)


def run_nas_after_hotplug(
    config: ExperimentConfig,
    app_name: str,
    nr_threads: Optional[int] = None,
) -> tuple:
    """Disable+re-enable a core, launch the app; (seconds, timed_out)."""
    system = config.build_system()
    topo = system.topology
    if nr_threads is None:
        nr_threads = topo.num_cpus
    system.hotplug_cpu(HOTPLUGGED_CPU, False)
    system.hotplug_cpu(HOTPLUGGED_CPU, True)
    app = nas_app(
        app_name, nr_threads, seed=config.seed, scale=config.scale
    )
    # All threads fork from the sshd-spawned shell on node 0.
    tasks = [system.spawn(spec, parent_cpu=0) for spec in app.thread_specs()]
    done = system.run_until_done(tasks, config.deadline_us)
    return system.now / SEC, not done, system


def nas_hotplug_trial(spec: TrialSpec) -> TrialResult:
    """Orchestrator trial: one post-hotplug NAS run from the spec."""
    app = spec.param("app")
    if app is None:
        raise ValueError("table3 trial spec is missing its 'app' param")
    config = ExperimentConfig(
        build_features(spec.features),
        seed=spec.seed,
        scale=spec.scale,
        deadline_us=spec.deadline_us,
    )
    seconds, timed_out, system = run_nas_after_hotplug(config, app)
    row: Dict[str, object] = {
        "app": app, "seconds": seconds, "timed_out": timed_out,
    }
    return TrialResult(
        row=row,
        schedule_digest=schedule_digest(system),
        stats=system_stats(system),
    )


def table3_specs(
    scale: float = 0.1,
    apps: Optional[Sequence[str]] = None,
    seed: int = 42,
    deadline_us: int = 900 * SEC,
) -> List[TrialSpec]:
    """The flat trial grid of Table 3: (buggy, fixed) for every app."""
    variants = (
        feature_tokens(autogroup=False),
        feature_tokens("missing_domains", autogroup=False),
    )
    specs: List[TrialSpec] = []
    for app_name in apps or all_nas_names():
        for tokens in variants:
            specs.append(
                TrialSpec(
                    kind=TRIAL_KIND,
                    scenario=f"table3:{app_name}",
                    seed=seed,
                    features=tokens,
                    scale=scale,
                    deadline_us=deadline_us,
                    params=(("app", app_name),),
                )
            )
    return specs


def table3_rows(outcomes: Sequence[TrialOutcome]) -> List[Table3Row]:
    """Merge trial outcomes (spec order: bug, fix per app) into rows."""
    rows: List[Table3Row] = []
    for i in range(0, len(outcomes), 2):
        bug, fix = outcomes[i].result.row, outcomes[i + 1].result.row
        rows.append(
            Table3Row(
                str(bug["app"]),
                float(bug["seconds"]),  # type: ignore[arg-type]
                float(fix["seconds"]),  # type: ignore[arg-type]
                timed_out=bool(bug["timed_out"]),
            )
        )
    return rows


def run_table3(
    scale: float = 0.1,
    apps: Optional[Sequence[str]] = None,
    seed: int = 42,
    deadline_us: int = 900 * SEC,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[Table3Row]:
    specs = table3_specs(
        scale=scale, apps=apps, seed=seed, deadline_us=deadline_us
    )
    run = run_trials(specs, jobs=jobs, cache=cache)
    return table3_rows(run.outcomes)


#: Speedup factors from the paper's Table 3.
PAPER_SPEEDUPS: Dict[str, float] = {
    "bt": 5.24, "cg": 24.9, "ep": 4.0, "ft": 7.69, "is": 5.36,
    "lu": 137.59, "mg": 9.03, "sp": 9.06, "ua": 64.27,
}


def format_table3(rows: List[Table3Row]) -> str:
    """Render the reproduced Table 3 with the paper's factors."""
    table = Table(
        "Table 3: NAS (64 threads) with the Missing Scheduling Domains bug "
        "(after a core disable/re-enable)",
        ["app", "time w/ bug (s)", "time w/o bug (s)", "speedup (x)",
         "paper (x)"],
    )
    for row in rows:
        bug_time = f"{row.time_with_bug_s:.3f}"
        if row.timed_out:
            bug_time = f">={bug_time}"
        table.add_row(
            row.app,
            bug_time,
            f"{row.time_without_bug_s:.3f}",
            f"{row.speedup:.2f}",
            f"{PAPER_SPEEDUPS.get(row.app, float('nan')):.2f}",
        )
    table.add_note(
        "threads run on one node instead of eight under the bug; factors "
        "beyond 8x are spin-synchronization waste (lu/ua extremes)"
    )
    return table.render()

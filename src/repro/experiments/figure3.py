"""Figure 3: the Overload-on-Wakeup bug visualized (database + TPC-H).

Paper setup: the commercial database with 64 workers runs TPC-H while
transient kernel threads perturb the load; autogroups are disabled to
isolate the wakeup bug.  The figure shows cores staying idle for long
stretches while extra database threads keep waking up on busy cores, and
the system eventually recovering when periodic balancing happens to elect
a long-term idle core.

We reproduce the trace, render the heatmap, and quantify the signature
with (a) the fraction of wakeups landing on busy cores and (b) the offline
invariant analysis (violation episodes and their durations).
"""

from __future__ import annotations

import os

from dataclasses import dataclass
from typing import List, Optional

from repro.core.offline import OfflineViolation, find_trace_violations
from repro.experiments.harness import ExperimentConfig
from repro.experiments.table2 import (
    CONTAINERS,
    TRANSIENT_DURATION_US,
    TRANSIENT_RATE_PER_SEC,
)
from repro.sched.features import SchedFeatures
from repro.sim.timebase import MS
from repro.viz.events import NrRunningEvent, TraceBuffer, TraceProbe
from repro.viz.heatmap import HeatmapBuilder, render_ascii_heatmap, render_svg_heatmap
from repro.viz.timeline import wakeup_busy_fraction
from repro.workloads.database import Database, query18
from repro.workloads.transient import TransientLoad


@dataclass
class Figure3Run:
    """One traced database run and its wakeup/violation statistics."""

    label: str
    trace: TraceBuffer
    span_us: int
    num_cpus: int
    cores_per_node: int
    busy_wakeup_fraction: float
    violations: List[OfflineViolation]

    @property
    def violation_time_ms(self) -> float:
        """Total milliseconds spent in detected imbalance episodes."""
        return sum(v.duration_us for v in self.violations) / 1000.0


def run_database_traced(
    config: ExperimentConfig, queries: int = 8
) -> Figure3Run:
    """One traced database run (Q18 x ``queries``) under ``config``."""
    system = config.build_system()
    topo = system.topology
    probe = TraceProbe(
        record_considered=False, record_load=False,
        record_lifecycle=False, record_migrations=True,
    )
    system.attach_probe(probe)
    db = Database(containers=CONTAINERS, seed=config.seed,
                  think_time_us=1_000)
    db.bind(system)
    transients = TransientLoad(
        rate_per_sec=TRANSIENT_RATE_PER_SEC,
        duration_us=TRANSIENT_DURATION_US,
        seed=config.seed + 1,
    )
    transients.attach(system)
    workers = [
        system.spawn(spec, parent_cpu=i % topo.num_cpus)
        for i, spec in enumerate(db.worker_specs())
    ]
    driver = system.spawn(
        db.driver_spec([query18(config.scale)] * queries), parent_cpu=0
    )
    system.run_until_done([driver], config.deadline_us)
    violations = find_trace_violations(
        probe.buffer, topo.num_cpus, min_duration_us=2 * MS,
        end_us=system.now,
    )
    return Figure3Run(
        label=config.features.describe(),
        trace=probe.buffer,
        span_us=system.now,
        num_cpus=topo.num_cpus,
        cores_per_node=topo.cores_per_node,
        busy_wakeup_fraction=wakeup_busy_fraction(probe.buffer),
        violations=violations,
    )


@dataclass
class Figure3Result:
    """Buggy and fixed traced runs, side by side."""

    buggy: Figure3Run
    fixed: Figure3Run


def run_figure3(scale: float = 1.0, seed: int = 42) -> Figure3Result:
    """Run the TPC-H scenario under the bug and the wakeup fix."""
    base = SchedFeatures().without_autogroup()
    return Figure3Result(
        buggy=run_database_traced(
            ExperimentConfig(base, seed=seed, scale=scale)
        ),
        fixed=run_database_traced(
            ExperimentConfig(
                base.with_fixes("overload_on_wakeup"), seed=seed, scale=scale
            )
        ),
    )


def render_figure3(
    result: Figure3Result,
    bins: int = 120,
    ascii_output: bool = True,
    svg_dir: Optional[str] = None,
) -> str:
    sections: List[str] = []
    for tag, run in (("with bug", result.buggy), ("fix applied", result.fixed)):
        builder = HeatmapBuilder(run.num_cpus, 0, run.span_us, bins)
        matrix = builder.from_trace(run.trace, NrRunningEvent)
        title = f"Figure 3 ({tag}): runqueue sizes during TPC-H"
        if ascii_output:
            sections.append(
                render_ascii_heatmap(
                    matrix, cores_per_node=run.cores_per_node, title=title
                )
            )
        if svg_dir is not None:
            os.makedirs(svg_dir, exist_ok=True)
            path = f"{svg_dir}/figure3-{tag.replace(' ', '-')}.svg"
            with open(path, "w", encoding="utf-8") as f:
                f.write(
                    render_svg_heatmap(
                        matrix,
                        cores_per_node=run.cores_per_node,
                        title=title,
                        t0_us=0,
                        t1_us=run.span_us,
                    )
                )
            sections.append(f"(SVG written to {path})")
        sections.append(
            f"  {tag}: wakeups on busy cores "
            f"{run.busy_wakeup_fraction:.1%}; "
            f"{len(run.violations)} invariant-violation episode(s) "
            f"totalling {run.violation_time_ms:.1f}ms "
            f"(episodes recover on their own, as in the paper)"
        )
    return "\n\n".join(sections)

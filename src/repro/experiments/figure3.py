"""Figure 3: the Overload-on-Wakeup bug visualized (database + TPC-H).

Paper setup: the commercial database with 64 workers runs TPC-H while
transient kernel threads perturb the load; autogroups are disabled to
isolate the wakeup bug.  The figure shows cores staying idle for long
stretches while extra database threads keep waking up on busy cores, and
the system eventually recovering when periodic balancing happens to elect
a long-term idle core.

We reproduce the trace, render the heatmap, and quantify the signature
with (a) the fraction of wakeups landing on busy cores and (b) the offline
invariant analysis (violation episodes and their durations).
"""

from __future__ import annotations

import os

from dataclasses import dataclass
from typing import List, Optional

from repro.core.offline import OfflineViolation, find_trace_violations
from repro.experiments.harness import ExperimentConfig, schedule_digest
from repro.experiments.table2 import (
    CONTAINERS,
    TRANSIENT_DURATION_US,
    TRANSIENT_RATE_PER_SEC,
)
from repro.perf.orchestrator import (
    ResultCache,
    TrialResult,
    TrialSpec,
    build_features,
    feature_tokens,
    run_trials,
)
from repro.sim.timebase import MS, SEC
from repro.viz.events import NrRunningEvent, TraceBuffer, TraceProbe
from repro.viz.heatmap import HeatmapBuilder, render_ascii_heatmap, render_svg_heatmap
from repro.viz.timeline import wakeup_busy_fraction
from repro.workloads.database import Database, query18
from repro.workloads.transient import TransientLoad


#: The orchestrator reference to this module's trial function.
TRIAL_KIND = "repro.experiments.figure3:database_trial"


@dataclass
class Figure3Run:
    """One traced database run and its wakeup/violation statistics."""

    label: str
    trace: TraceBuffer
    span_us: int
    num_cpus: int
    cores_per_node: int
    busy_wakeup_fraction: float
    violations: List[OfflineViolation]
    #: Schedule fingerprint of the run (tracing does not perturb it).
    schedule_digest: str = ""

    @property
    def violation_time_ms(self) -> float:
        """Total milliseconds spent in detected imbalance episodes."""
        return sum(v.duration_us for v in self.violations) / 1000.0


def run_database_traced(
    config: ExperimentConfig, queries: int = 8
) -> Figure3Run:
    """One traced database run (Q18 x ``queries``) under ``config``."""
    system = config.build_system()
    topo = system.topology
    probe = TraceProbe(
        record_considered=False, record_load=False,
        record_lifecycle=False, record_migrations=True,
    )
    system.attach_probe(probe)
    db = Database(containers=CONTAINERS, seed=config.seed,
                  think_time_us=1_000)
    db.bind(system)
    transients = TransientLoad(
        rate_per_sec=TRANSIENT_RATE_PER_SEC,
        duration_us=TRANSIENT_DURATION_US,
        seed=config.seed + 1,
    )
    transients.attach(system)
    workers = [
        system.spawn(spec, parent_cpu=i % topo.num_cpus)
        for i, spec in enumerate(db.worker_specs())
    ]
    driver = system.spawn(
        db.driver_spec([query18(config.scale)] * queries), parent_cpu=0
    )
    system.run_until_done([driver], config.deadline_us)
    violations = find_trace_violations(
        probe.buffer, topo.num_cpus, min_duration_us=2 * MS,
        end_us=system.now,
    )
    return Figure3Run(
        label=config.features.describe(),
        trace=probe.buffer,
        span_us=system.now,
        num_cpus=topo.num_cpus,
        cores_per_node=topo.cores_per_node,
        busy_wakeup_fraction=wakeup_busy_fraction(probe.buffer),
        violations=violations,
        schedule_digest=schedule_digest(system),
    )


def database_trial(spec: TrialSpec) -> TrialResult:
    """Orchestrator trial: one traced database run from the spec.

    The wakeup fraction and invariant-violation statistics are computed
    inside the worker, so the row is cacheable; the trace itself rides
    back as an artifact only when the ``artifact`` param is set (those
    specs opt out of the cache).
    """
    queries = int(spec.param("queries", "8") or "8")
    config = ExperimentConfig(
        build_features(spec.features),
        seed=spec.seed,
        scale=spec.scale,
        deadline_us=spec.deadline_us or 600 * SEC,
    )
    run = run_database_traced(config, queries=queries)
    row: Dict[str, object] = {
        "label": run.label,
        "span_us": run.span_us,
        "busy_wakeup_fraction": run.busy_wakeup_fraction,
        "violation_episodes": len(run.violations),
        "violation_time_ms": run.violation_time_ms,
    }
    want_artifact = spec.param("artifact") == "1"
    return TrialResult(
        row=row,
        schedule_digest=run.schedule_digest,
        stats={"sim_us": run.span_us},
        artifact=run if want_artifact else None,
    )


def figure3_specs(
    scale: float = 1.0,
    seed: int = 42,
    queries: int = 8,
    artifact: bool = True,
) -> List[TrialSpec]:
    """The (buggy, fixed) traced-database trial pair."""
    specs: List[TrialSpec] = []
    for tokens in (
        feature_tokens(autogroup=False),
        feature_tokens("overload_on_wakeup", autogroup=False),
    ):
        params: tuple = (("queries", str(queries)),)
        if artifact:
            params += (("artifact", "1"),)
        specs.append(
            TrialSpec(
                kind=TRIAL_KIND,
                scenario="figure3:tpch",
                seed=seed,
                features=tokens,
                scale=scale,
                params=params,
                cache=not artifact,
            )
        )
    return specs


@dataclass
class Figure3Result:
    """Buggy and fixed traced runs, side by side."""

    buggy: Figure3Run
    fixed: Figure3Run


def run_figure3(
    scale: float = 1.0,
    seed: int = 42,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Figure3Result:
    """Run the TPC-H scenario under the bug and the wakeup fix."""
    run = run_trials(
        figure3_specs(scale=scale, seed=seed), jobs=jobs, cache=cache
    )
    buggy, fixed = (o.result.artifact for o in run.outcomes)
    return Figure3Result(buggy=buggy, fixed=fixed)


def render_figure3(
    result: Figure3Result,
    bins: int = 120,
    ascii_output: bool = True,
    svg_dir: Optional[str] = None,
) -> str:
    sections: List[str] = []
    for tag, run in (("with bug", result.buggy), ("fix applied", result.fixed)):
        builder = HeatmapBuilder(run.num_cpus, 0, run.span_us, bins)
        matrix = builder.from_trace(run.trace, NrRunningEvent)
        title = f"Figure 3 ({tag}): runqueue sizes during TPC-H"
        if ascii_output:
            sections.append(
                render_ascii_heatmap(
                    matrix, cores_per_node=run.cores_per_node, title=title
                )
            )
        if svg_dir is not None:
            os.makedirs(svg_dir, exist_ok=True)
            path = f"{svg_dir}/figure3-{tag.replace(' ', '-')}.svg"
            with open(path, "w", encoding="utf-8") as f:
                f.write(
                    render_svg_heatmap(
                        matrix,
                        cores_per_node=run.cores_per_node,
                        title=title,
                        t0_us=0,
                        t1_us=run.span_us,
                    )
                )
            sections.append(f"(SVG written to {path})")
        sections.append(
            f"  {tag}: wakeups on busy cores "
            f"{run.busy_wakeup_fraction:.1%}; "
            f"{len(run.violations)} invariant-violation episode(s) "
            f"totalling {run.violation_time_ms:.1f}ms "
            f"(episodes recover on their own, as in the paper)"
        )
    return "\n\n".join(sections)

"""Table 5, Figure 1 and Figure 4: the machine and its domain hierarchy.

These are descriptive artifacts: the experimental machine's spec sheet
(Table 5), the scheduling-domain hierarchy as seen from core 0 (Figure 1's
structure, on the 64-core machine), and the NUMA interconnect with its
one-hop neighborhoods (Figure 4).
"""

from __future__ import annotations

from repro.sched.domains import DomainBuilder, describe_domains
from repro.sched.features import SchedFeatures
from repro.topology import amd_bulldozer_64, paper_figure1_machine
from repro.topology.interconnect import hop_levels


def format_table5() -> str:
    """The hardware description (paper Table 5)."""
    return amd_bulldozer_64().describe()


def format_figure4() -> str:
    """The interconnect: links and one-hop neighborhoods (paper Figure 4)."""
    topo = amd_bulldozer_64()
    ic = topo.interconnect
    lines = ["Figure 4: topology of the 8-node AMD Bulldozer machine"]
    lines.append(f"links: {ic.links()}")
    for node in range(ic.num_nodes):
        lines.append(
            f"  node {node}: one hop -> {sorted(ic.neighbors(node))}"
        )
    lines.append(f"hop levels: {list(hop_levels(ic))} "
                 f"(diameter {ic.diameter()})")
    lines.append(
        "nodes 1 and 2 are two hops apart: "
        f"distance = {ic.distance(1, 2)}"
    )
    return "\n".join(lines)


def format_figure1(fixed_groups: bool = False) -> str:
    """The domain hierarchy from core 0's perspective (paper Figure 1).

    Rendered on the Figure 1 example machine (32 cores, 4 nodes); pass
    ``fixed_groups=True`` to see the per-perspective construction.
    """
    topo = paper_figure1_machine()
    features = SchedFeatures()
    if fixed_groups:
        features = features.with_fixes("group_construction")
    builder = DomainBuilder(topo, features)
    header = (
        "Figure 1: scheduling domains of the first core "
        f"({'fixed' if fixed_groups else 'mainline'} group construction)"
    )
    return header + "\n" + describe_domains(builder, 0)


def format_bulldozer_domains(cpu: int = 0, fixed_groups: bool = False) -> str:
    """The same dump on the experimental 64-core machine."""
    topo = amd_bulldozer_64()
    features = SchedFeatures()
    if fixed_groups:
        features = features.with_fixes("group_construction")
    builder = DomainBuilder(topo, features)
    return describe_domains(builder, cpu)

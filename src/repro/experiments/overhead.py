"""Section 4.1's overhead claim: the sanity checker is nearly free.

The paper measured under 0.5% overhead at S = 1 s with up to 10,000
threads.  In a simulator the analogous claims are:

1. the checker must not *change* the schedule (same virtual completion
   time, same migrations with and without it attached); and
2. its compute cost must stay a small fraction of the run (we report the
   checker's share of wall-clock time, measured by timing its tick hook).

Both are what :func:`run_overhead` measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.sanity_checker import SanityChecker
from repro.experiments.harness import ExperimentConfig, schedule_digest
from repro.perf.orchestrator import (
    TrialResult,
    TrialSpec,
    run_trials,
)
from repro.sched.features import SchedFeatures
from repro.sim.timebase import MS, SEC
from repro.workloads.base import Run, Sleep, TaskSpec

#: The orchestrator reference to this module's trial function.
TRIAL_KIND = "repro.experiments.overhead:overhead_trial"


@dataclass
class OverheadResult:
    """Paired runs with and without the checker attached."""

    virtual_seconds_plain: float
    virtual_seconds_checked: float
    wall_seconds_plain: float
    wall_seconds_checked: float
    checks_performed: int
    threads: int

    @property
    def behavior_identical(self) -> bool:
        """The checker observed but did not perturb the schedule."""
        return self.virtual_seconds_plain == self.virtual_seconds_checked

    @property
    def wall_overhead_fraction(self) -> float:
        """Relative wall-clock cost of attaching the checker."""
        if self.wall_seconds_plain <= 0:
            return 0.0
        return (
            (self.wall_seconds_checked - self.wall_seconds_plain)
            / self.wall_seconds_plain
        )


def _mixed_workload(system, threads: int, seed: int):
    tasks = []
    for i in range(threads):
        if i % 3 == 0:
            def factory(i=i):
                def program():
                    while True:
                        yield Run(2 * MS)
                        yield Sleep(1 * MS)
                return program()
            spec = TaskSpec(f"mix-sleeper-{i}", factory)
        else:
            def factory(i=i):
                def program():
                    while True:
                        yield Run(5 * MS)
                return program()
            spec = TaskSpec(f"mix-hog-{i}", factory)
        tasks.append(
            system.spawn(spec, parent_cpu=i % system.topology.num_cpus)
        )
    return tasks


def _one_overhead_run(
    threads: int,
    run_virtual_s: float,
    check_interval_us: int,
    seed: int,
    checked: bool,
) -> Dict[str, object]:
    """One measured run, with or without the checker attached."""
    config = ExperimentConfig(SchedFeatures(), seed=seed)
    system = config.build_system()
    _mixed_workload(system, threads, seed)
    checker = None
    if checked:
        checker = SanityChecker(check_interval_us=check_interval_us)
        checker.attach(system)
    wall0 = time.perf_counter()
    system.run_for(int(run_virtual_s * SEC))
    wall = time.perf_counter() - wall0
    return {
        "virtual_seconds": system.now / SEC,
        "wall_seconds": wall,
        "migrations": system.scheduler.total_migrations,
        "checks_performed": checker.checks_performed if checker else 0,
        "schedule_digest": schedule_digest(system),
    }


def overhead_trial(spec: TrialSpec) -> TrialResult:
    """Orchestrator trial: one overhead measurement run from the spec.

    Wall-clock is part of the result, so overhead specs never cache.
    """
    row = _one_overhead_run(
        threads=int(spec.param("threads", "256") or "256"),
        run_virtual_s=float(spec.param("virtual_s", "2.0") or "2.0"),
        check_interval_us=int(spec.param("interval_us", str(SEC)) or SEC),
        seed=spec.seed,
        checked=spec.param("checked") == "1",
    )
    digest = str(row.pop("schedule_digest"))
    return TrialResult(row=row, schedule_digest=digest)


def overhead_specs(
    threads: int = 256,
    run_virtual_s: float = 2.0,
    check_interval_us: int = 1 * SEC,
    seed: int = 42,
) -> List[TrialSpec]:
    """The (plain, checked) measurement pair as trial specs."""
    specs: List[TrialSpec] = []
    for checked in ("0", "1"):
        specs.append(
            TrialSpec(
                kind=TRIAL_KIND,
                scenario="overhead:sanity-checker",
                seed=seed,
                params=(
                    ("threads", str(threads)),
                    ("virtual_s", repr(run_virtual_s)),
                    ("interval_us", str(check_interval_us)),
                    ("checked", checked),
                ),
                cache=False,
            )
        )
    return specs


def run_overhead(
    threads: int = 256,
    run_virtual_s: float = 2.0,
    check_interval_us: int = 1 * SEC,
    seed: int = 42,
    jobs: Optional[int] = None,
) -> OverheadResult:
    """Identical workload with and without the checker attached."""
    specs = overhead_specs(
        threads=threads, run_virtual_s=run_virtual_s,
        check_interval_us=check_interval_us, seed=seed,
    )
    plain, checked = (o.result.row for o in
                      run_trials(specs, jobs=jobs).outcomes)
    assert plain["migrations"] == checked["migrations"], (
        "sanity checker perturbed the schedule: "
        f"{plain['migrations']} vs {checked['migrations']} migrations"
    )
    return OverheadResult(
        virtual_seconds_plain=float(plain["virtual_seconds"]),  # type: ignore[arg-type]
        virtual_seconds_checked=float(checked["virtual_seconds"]),  # type: ignore[arg-type]
        wall_seconds_plain=float(plain["wall_seconds"]),  # type: ignore[arg-type]
        wall_seconds_checked=float(checked["wall_seconds"]),  # type: ignore[arg-type]
        checks_performed=int(checked["checks_performed"]),  # type: ignore[arg-type]
        threads=threads,
    )


def format_overhead(result: OverheadResult) -> str:
    """One-line summary of the overhead measurement."""
    return (
        f"sanity-checker overhead ({result.threads} threads, "
        f"{result.checks_performed} checks): "
        f"behavior identical = {result.behavior_identical}, "
        f"wall-clock overhead = {result.wall_overhead_fraction:+.1%} "
        f"(paper: < 0.5% at S = 1s)"
    )

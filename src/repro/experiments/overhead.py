"""Section 4.1's overhead claim: the sanity checker is nearly free.

The paper measured under 0.5% overhead at S = 1 s with up to 10,000
threads.  In a simulator the analogous claims are:

1. the checker must not *change* the schedule (same virtual completion
   time, same migrations with and without it attached); and
2. its compute cost must stay a small fraction of the run (we report the
   checker's share of wall-clock time, measured by timing its tick hook).

Both are what :func:`run_overhead` measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.sanity_checker import SanityChecker
from repro.experiments.harness import ExperimentConfig
from repro.sched.features import SchedFeatures
from repro.sim.timebase import MS, SEC
from repro.workloads.base import Run, Sleep, TaskSpec


@dataclass
class OverheadResult:
    """Paired runs with and without the checker attached."""

    virtual_seconds_plain: float
    virtual_seconds_checked: float
    wall_seconds_plain: float
    wall_seconds_checked: float
    checks_performed: int
    threads: int

    @property
    def behavior_identical(self) -> bool:
        """The checker observed but did not perturb the schedule."""
        return self.virtual_seconds_plain == self.virtual_seconds_checked

    @property
    def wall_overhead_fraction(self) -> float:
        """Relative wall-clock cost of attaching the checker."""
        if self.wall_seconds_plain <= 0:
            return 0.0
        return (
            (self.wall_seconds_checked - self.wall_seconds_plain)
            / self.wall_seconds_plain
        )


def _mixed_workload(system, threads: int, seed: int):
    tasks = []
    for i in range(threads):
        if i % 3 == 0:
            def factory(i=i):
                def program():
                    while True:
                        yield Run(2 * MS)
                        yield Sleep(1 * MS)
                return program()
            spec = TaskSpec(f"mix-sleeper-{i}", factory)
        else:
            def factory(i=i):
                def program():
                    while True:
                        yield Run(5 * MS)
                return program()
            spec = TaskSpec(f"mix-hog-{i}", factory)
        tasks.append(
            system.spawn(spec, parent_cpu=i % system.topology.num_cpus)
        )
    return tasks


def run_overhead(
    threads: int = 256,
    run_virtual_s: float = 2.0,
    check_interval_us: int = 1 * SEC,
    seed: int = 42,
) -> OverheadResult:
    """Identical workload with and without the checker attached."""
    config = ExperimentConfig(SchedFeatures(), seed=seed)
    horizon = int(run_virtual_s * SEC)

    system = config.build_system()
    _mixed_workload(system, threads, seed)
    wall0 = time.perf_counter()
    system.run_for(horizon)
    wall_plain = time.perf_counter() - wall0
    virtual_plain = system.now / SEC
    migrations_plain = system.scheduler.total_migrations

    system = config.build_system()
    _mixed_workload(system, threads, seed)
    checker = SanityChecker(check_interval_us=check_interval_us)
    checker.attach(system)
    wall0 = time.perf_counter()
    system.run_for(horizon)
    wall_checked = time.perf_counter() - wall0
    virtual_checked = system.now / SEC
    migrations_checked = system.scheduler.total_migrations

    assert migrations_plain == migrations_checked, (
        "sanity checker perturbed the schedule: "
        f"{migrations_plain} vs {migrations_checked} migrations"
    )
    return OverheadResult(
        virtual_seconds_plain=virtual_plain,
        virtual_seconds_checked=virtual_checked,
        wall_seconds_plain=wall_plain,
        wall_seconds_checked=wall_checked,
        checks_performed=checker.checks_performed,
        threads=threads,
    )


def format_overhead(result: OverheadResult) -> str:
    """One-line summary of the overhead measurement."""
    return (
        f"sanity-checker overhead ({result.threads} threads, "
        f"{result.checks_performed} checks): "
        f"behavior identical = {result.behavior_identical}, "
        f"wall-clock overhead = {result.wall_overhead_fraction:+.1%} "
        f"(paper: < 0.5% at S = 1s)"
    )

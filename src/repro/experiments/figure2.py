"""Figure 2: the Group Imbalance bug visualized (make + 2 R).

Paper setup: a 64-thread kernel ``make`` and two single-threaded R
processes, launched from three different ssh connections (three ttys, so
three autogroups).  Figure 2a is the runqueue-size heatmap under the bug
(two nodes nearly idle while the rest are overloaded); Figure 2b is the
per-core load heatmap explaining why (the R cores' huge load inflates
their nodes' averages); Figure 2c is 2a with the fix applied.  The paper
also reports the make job finishing 13% faster with the fix.
"""

from __future__ import annotations

import os

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.harness import ExperimentConfig, schedule_digest
from repro.perf.orchestrator import (
    ResultCache,
    TrialResult,
    TrialSpec,
    build_features,
    feature_tokens,
    run_trials,
)
from repro.sim.timebase import SEC
from repro.viz.events import LoadEvent, NrRunningEvent, TraceBuffer, TraceProbe
from repro.viz.heatmap import (
    HeatmapBuilder,
    render_ascii_heatmap,
    render_svg_heatmap,
)
from repro.workloads.cpubound import r_process
from repro.workloads.make import MakeJob, make_driver


#: The orchestrator reference to this module's trial function.
TRIAL_KIND = "repro.experiments.figure2:make_r_trial"


@dataclass
class Figure2Run:
    """One traced make+R run."""

    label: str
    trace: TraceBuffer
    make_seconds: float
    span_us: int
    num_cpus: int
    cores_per_node: int
    idle_node_core_seconds: float
    #: Schedule fingerprint of the run (tracing does not perturb it).
    schedule_digest: str = ""


def run_make_and_r(
    config: ExperimentConfig,
    nr_make_workers: int = 64,
    total_jobs: Optional[int] = None,
    traced: bool = True,
) -> Figure2Run:
    """Run make(64) + 2 R from three ttys, traced unless asked not to.

    ``traced=False`` skips the heatmap probe (the returned ``trace`` is
    empty); the schedule -- and so every number and the digest -- is
    identical either way, since probes only observe.
    """
    system = config.build_system()
    topo = system.topology
    trace_probe = TraceProbe(
        record_considered=False, record_wakeups=False,
        record_migrations=False, record_lifecycle=False,
    )
    if traced:
        system.attach_probe(trace_probe)

    if total_jobs is None:
        total_jobs = max(200, int(3000 * config.scale))
    job = MakeJob(total_jobs=total_jobs, compile_mean_us=8_000,
                  seed=config.seed)
    # The R jobs run on nodes 0 and 4 (the paper's underused nodes).
    r1 = system.spawn(
        r_process("R-1", tty="tty-r1"),
        on_cpu=min(topo.cpus_of_node(0)),
    )
    r2 = system.spawn(
        r_process("R-2", tty="tty-r2"),
        on_cpu=min(topo.cpus_of_node(4 % topo.num_nodes)),
    )
    # make -j N forks one compile process per translation unit; they all
    # start near the driver (node 0), and only load balancing can spread
    # them -- which is exactly what the Group Imbalance bug breaks.
    driver = system.spawn(
        make_driver(job, parallelism=nr_make_workers, tty="tty-make"),
        on_cpu=1,
    )
    done = system.run_until_done([driver], config.deadline_us)
    make_seconds = system.now / SEC if done else config.deadline_us / SEC

    # Idle core-time on the R nodes: the bug's wasted capacity.
    r_nodes = {0, 4 % topo.num_nodes}
    idle = sum(
        system.now - system.scheduler.cpus[c].busy_time_us
        for node in r_nodes
        for c in topo.cpus_of_node(node)
    )
    del r1, r2
    return Figure2Run(
        label=config.features.describe(),
        trace=trace_probe.buffer,
        make_seconds=make_seconds,
        span_us=system.now,
        num_cpus=topo.num_cpus,
        cores_per_node=topo.cores_per_node,
        idle_node_core_seconds=idle / 1e6,
        schedule_digest=schedule_digest(system),
    )


def make_r_trial(spec: TrialSpec) -> TrialResult:
    """Orchestrator trial: one make+2R run, rebuilt from the spec.

    With the ``trace`` param set, the full :class:`Figure2Run` (heatmap
    trace included) rides back as the result's artifact -- such specs
    must opt out of the cache.  Without it the run is untraced and the
    row alone (make seconds, idle core-time) is cacheable.
    """
    traced = spec.param("trace") == "1"
    config = ExperimentConfig(
        build_features(spec.features),
        seed=spec.seed,
        scale=spec.scale,
        deadline_us=spec.deadline_us or 600 * SEC,
    )
    run = run_make_and_r(config, traced=traced)
    row: Dict[str, object] = {
        "label": run.label,
        "make_seconds": run.make_seconds,
        "span_us": run.span_us,
        "idle_node_core_seconds": run.idle_node_core_seconds,
    }
    return TrialResult(
        row=row,
        schedule_digest=run.schedule_digest,
        stats={"sim_us": run.span_us},
        artifact=run if traced else None,
    )


def figure2_specs(
    scale: float = 0.3,
    seed: int = 42,
    traced: bool = True,
) -> List[TrialSpec]:
    """The (buggy, fixed) make+2R trial pair."""
    specs: List[TrialSpec] = []
    for tokens in ((), feature_tokens("group_imbalance")):
        specs.append(
            TrialSpec(
                kind=TRIAL_KIND,
                scenario="figure2:make+2R",
                seed=seed,
                features=tokens,
                scale=scale,
                params=(("trace", "1"),) if traced else (),
                cache=not traced,
            )
        )
    return specs


@dataclass
class Figure2Result:
    """Both traced runs plus the derived improvement."""

    buggy: Figure2Run
    fixed: Figure2Run

    @property
    def make_improvement_pct(self) -> float:
        """Make completion change with the fix (negative = faster)."""
        return (
            (self.fixed.make_seconds - self.buggy.make_seconds)
            / self.buggy.make_seconds * 100.0
        )


def run_figure2(
    scale: float = 0.3,
    seed: int = 42,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Figure2Result:
    """Run the make+R scenario under the bug and the fix.

    Both traced runs go through the orchestrator (the traces ride back
    as artifacts and stay out of the result cache), so ``jobs=2`` runs
    the buggy and fixed variants on two cores.
    """
    run = run_trials(figure2_specs(scale=scale, seed=seed), jobs=jobs,
                     cache=cache)
    buggy, fixed = (o.result.artifact for o in run.outcomes)
    return Figure2Result(buggy=buggy, fixed=fixed)


def render_figure2(
    result: Figure2Result,
    bins: int = 100,
    ascii_output: bool = True,
    svg_dir: Optional[str] = None,
) -> str:
    """Render 2a/2b/2c; returns ASCII, optionally writing SVG files."""
    sections: List[str] = []
    panels = [
        ("2a", result.buggy, NrRunningEvent, False,
         "#threads in each core's runqueue (with bug)"),
        ("2b", result.buggy, LoadEvent, True,
         "load of each core's runqueue (with bug)"),
        ("2c", result.fixed, NrRunningEvent, False,
         "#threads in each core's runqueue (fix applied)"),
    ]
    for tag, run, event_type, grayscale, title in panels:
        builder = HeatmapBuilder(run.num_cpus, 0, run.span_us, bins)
        matrix = builder.from_trace(run.trace, event_type)
        if ascii_output:
            sections.append(
                render_ascii_heatmap(
                    matrix,
                    cores_per_node=run.cores_per_node,
                    title=f"Figure {tag}: {title}",
                )
            )
        if svg_dir is not None:
            os.makedirs(svg_dir, exist_ok=True)
            svg = render_svg_heatmap(
                matrix,
                cores_per_node=run.cores_per_node,
                title=f"Figure {tag}: {title}",
                value_label="load" if grayscale else "threads",
                grayscale=grayscale,
                t0_us=0,
                t1_us=run.span_us,
            )
            path = f"{svg_dir}/figure{tag}.svg"
            with open(path, "w", encoding="utf-8") as f:
                f.write(svg)
            sections.append(f"(SVG written to {path})")
    sections.append(
        f"make completion: {result.buggy.make_seconds:.3f}s with bug, "
        f"{result.fixed.make_seconds:.3f}s fixed "
        f"({result.make_improvement_pct:+.1f}%; paper: -13%)"
    )
    sections.append(
        f"idle core-time on R nodes: {result.buggy.idle_node_core_seconds:.2f}"
        f" core-s with bug vs {result.fixed.idle_node_core_seconds:.2f} fixed"
    )
    return "\n\n".join(sections)

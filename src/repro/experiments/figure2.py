"""Figure 2: the Group Imbalance bug visualized (make + 2 R).

Paper setup: a 64-thread kernel ``make`` and two single-threaded R
processes, launched from three different ssh connections (three ttys, so
three autogroups).  Figure 2a is the runqueue-size heatmap under the bug
(two nodes nearly idle while the rest are overloaded); Figure 2b is the
per-core load heatmap explaining why (the R cores' huge load inflates
their nodes' averages); Figure 2c is 2a with the fix applied.  The paper
also reports the make job finishing 13% faster with the fix.
"""

from __future__ import annotations

import os

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.harness import ExperimentConfig
from repro.sched.features import SchedFeatures
from repro.sim.timebase import SEC
from repro.viz.events import LoadEvent, NrRunningEvent, TraceBuffer, TraceProbe
from repro.viz.heatmap import (
    HeatmapBuilder,
    render_ascii_heatmap,
    render_svg_heatmap,
)
from repro.workloads.cpubound import r_process
from repro.workloads.make import MakeJob, make_driver


@dataclass
class Figure2Run:
    """One traced make+R run."""

    label: str
    trace: TraceBuffer
    make_seconds: float
    span_us: int
    num_cpus: int
    cores_per_node: int
    idle_node_core_seconds: float


def run_make_and_r(
    config: ExperimentConfig,
    nr_make_workers: int = 64,
    total_jobs: Optional[int] = None,
) -> Figure2Run:
    """Run make(64) + 2 R from three ttys with tracing enabled."""
    system = config.build_system()
    topo = system.topology
    trace_probe = TraceProbe(
        record_considered=False, record_wakeups=False,
        record_migrations=False, record_lifecycle=False,
    )
    system.attach_probe(trace_probe)

    if total_jobs is None:
        total_jobs = max(200, int(3000 * config.scale))
    job = MakeJob(total_jobs=total_jobs, compile_mean_us=8_000,
                  seed=config.seed)
    # The R jobs run on nodes 0 and 4 (the paper's underused nodes).
    r1 = system.spawn(
        r_process("R-1", tty="tty-r1"),
        on_cpu=min(topo.cpus_of_node(0)),
    )
    r2 = system.spawn(
        r_process("R-2", tty="tty-r2"),
        on_cpu=min(topo.cpus_of_node(4 % topo.num_nodes)),
    )
    # make -j N forks one compile process per translation unit; they all
    # start near the driver (node 0), and only load balancing can spread
    # them -- which is exactly what the Group Imbalance bug breaks.
    driver = system.spawn(
        make_driver(job, parallelism=nr_make_workers, tty="tty-make"),
        on_cpu=1,
    )
    done = system.run_until_done([driver], config.deadline_us)
    make_seconds = system.now / SEC if done else config.deadline_us / SEC

    # Idle core-time on the R nodes: the bug's wasted capacity.
    r_nodes = {0, 4 % topo.num_nodes}
    idle = sum(
        system.now - system.scheduler.cpus[c].busy_time_us
        for node in r_nodes
        for c in topo.cpus_of_node(node)
    )
    del r1, r2
    return Figure2Run(
        label=config.features.describe(),
        trace=trace_probe.buffer,
        make_seconds=make_seconds,
        span_us=system.now,
        num_cpus=topo.num_cpus,
        cores_per_node=topo.cores_per_node,
        idle_node_core_seconds=idle / 1e6,
    )


@dataclass
class Figure2Result:
    """Both traced runs plus the derived improvement."""

    buggy: Figure2Run
    fixed: Figure2Run

    @property
    def make_improvement_pct(self) -> float:
        """Make completion change with the fix (negative = faster)."""
        return (
            (self.fixed.make_seconds - self.buggy.make_seconds)
            / self.buggy.make_seconds * 100.0
        )


def run_figure2(scale: float = 0.3, seed: int = 42) -> Figure2Result:
    """Run the make+R scenario under the bug and the fix."""
    buggy = ExperimentConfig(SchedFeatures(), seed=seed, scale=scale)
    fixed = ExperimentConfig(
        SchedFeatures().with_fixes("group_imbalance"), seed=seed, scale=scale
    )
    return Figure2Result(
        buggy=run_make_and_r(buggy),
        fixed=run_make_and_r(fixed),
    )


def render_figure2(
    result: Figure2Result,
    bins: int = 100,
    ascii_output: bool = True,
    svg_dir: Optional[str] = None,
) -> str:
    """Render 2a/2b/2c; returns ASCII, optionally writing SVG files."""
    sections: List[str] = []
    panels = [
        ("2a", result.buggy, NrRunningEvent, False,
         "#threads in each core's runqueue (with bug)"),
        ("2b", result.buggy, LoadEvent, True,
         "load of each core's runqueue (with bug)"),
        ("2c", result.fixed, NrRunningEvent, False,
         "#threads in each core's runqueue (fix applied)"),
    ]
    for tag, run, event_type, grayscale, title in panels:
        builder = HeatmapBuilder(run.num_cpus, 0, run.span_us, bins)
        matrix = builder.from_trace(run.trace, event_type)
        if ascii_output:
            sections.append(
                render_ascii_heatmap(
                    matrix,
                    cores_per_node=run.cores_per_node,
                    title=f"Figure {tag}: {title}",
                )
            )
        if svg_dir is not None:
            os.makedirs(svg_dir, exist_ok=True)
            svg = render_svg_heatmap(
                matrix,
                cores_per_node=run.cores_per_node,
                title=f"Figure {tag}: {title}",
                value_label="load" if grayscale else "threads",
                grayscale=grayscale,
                t0_us=0,
                t1_us=run.span_us,
            )
            path = f"{svg_dir}/figure{tag}.svg"
            with open(path, "w", encoding="utf-8") as f:
                f.write(svg)
            sections.append(f"(SVG written to {path})")
    sections.append(
        f"make completion: {result.buggy.make_seconds:.3f}s with bug, "
        f"{result.fixed.make_seconds:.3f}s fixed "
        f"({result.make_improvement_pct:+.1f}%; paper: -13%)"
    )
    sections.append(
        f"idle core-time on R nodes: {result.buggy.idle_node_core_seconds:.2f}"
        f" core-s with bug vs {result.fixed.idle_node_core_seconds:.2f} fixed"
    )
    return "\n\n".join(sections)

"""Shared experiment plumbing: configuration, scaling, repetition."""

from __future__ import annotations

import hashlib
import json
import math
import os
import statistics
from dataclasses import dataclass, replace
from typing import Callable, Dict, FrozenSet, List, Sequence

from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import SEC
from repro.topology import amd_bulldozer_64
from repro.topology.machine import MachineTopology

#: Seed stride between repetitions of the same experiment (a prime, so
#: repetition seeds never collide across nearby base seeds).
SEED_STRIDE = 1009


def quick_scale(default: float = 1.0) -> float:
    """Experiment scale factor; ``REPRO_SCALE`` overrides (e.g. 0.25)."""
    value = os.environ.get("REPRO_SCALE")
    if value is None or value.strip() == "":
        return default
    try:
        scale = float(value)
    except ValueError:
        raise ValueError(
            f"REPRO_SCALE must be a number such as 0.25, got {value!r}"
        ) from None
    if not math.isfinite(scale) or scale <= 0:
        raise ValueError(
            f"REPRO_SCALE must be a positive finite number, got {value!r}"
        )
    return scale


@dataclass(frozen=True)
class ExperimentConfig:
    """Machine + scheduler configuration for one experiment run."""

    features: SchedFeatures
    seed: int = 42
    scale: float = 1.0
    deadline_us: int = 600 * SEC
    topology_factory: Callable[[], MachineTopology] = amd_bulldozer_64
    #: Attach an observability session to every built system, so tables
    #: can report wakeup-to-run latency percentiles (``system.obs``).
    obs: bool = False

    def with_features(self, features: SchedFeatures) -> "ExperimentConfig":
        """A copy with a different scheduler configuration."""
        return replace(self, features=features)

    def with_obs(self, obs: bool = True) -> "ExperimentConfig":
        """A copy with observability on (or off)."""
        return replace(self, obs=obs)

    def build_system(self) -> System:
        """A fresh simulated machine for this configuration."""
        system = System(
            self.topology_factory(), self.features, seed=self.seed
        )
        if self.obs:
            from repro.obs import ObsSession
            from repro.obs.tracepoints import TracepointRegistry

            # A private registry per run: concurrent experiment systems
            # must not hear each other's scheduler events.
            system.obs = ObsSession.attach_to(
                system, trace=False, registry=TracepointRegistry()
            )
        return system


def node_cpuset(
    topology: MachineTopology, nodes: Sequence[int]
) -> FrozenSet[int]:
    """``numactl --cpunodebind`` analog: the CPU set of the given nodes."""
    return topology.cpus_of_nodes(list(nodes))


def repetition_seeds(base_seed: int, repetitions: int) -> List[int]:
    """The seed sequence one averaged experiment cell repeats over.

    This is *the* seed schedule of the repetition loop -- both the serial
    :func:`averaged` helper and the orchestrator's sharded trial specs
    derive their seeds from it, which is what keeps a ``--jobs 4`` run's
    numbers byte-identical to the historical serial ones.
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    return [base_seed + SEED_STRIDE * i for i in range(repetitions)]


def averaged(
    run: Callable[[int], float],
    repetitions: int = 1,
    base_seed: int = 42,
) -> float:
    """Mean of ``run(seed)`` over varied seeds (the paper averages 5 runs)."""
    values: List[float] = [
        run(seed) for seed in repetition_seeds(base_seed, repetitions)
    ]
    return statistics.mean(values)


def schedule_digest(system: System) -> str:
    """SHA-256 fingerprint of a finished run's schedule.

    Folds in the counters any scheduling difference must perturb --
    virtual completion time, events fired, migrations, balancing calls,
    and every CPU's accumulated busy time -- all integers, so the digest
    is stable across platforms and float formatting.  Two runs of the
    same trial spec must produce the same digest no matter how many
    worker processes the orchestrator used; this is the equivalence
    witness behind the ``-jN`` guarantees.
    """
    payload = {
        "now_us": system.now,
        "events_fired": system.loop.events_fired,
        "migrations": system.scheduler.total_migrations,
        "balance_calls": system.scheduler.balance_calls,
        "busy_time_us": [cpu.busy_time_us for cpu in system.scheduler.cpus],
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def system_stats(system: System) -> Dict[str, int]:
    """A finished run's integer counters (for trial-result accounting)."""
    return {
        "sim_us": system.now,
        "events_fired": system.loop.events_fired,
        "migrations": system.scheduler.total_migrations,
        "balance_calls": system.scheduler.balance_calls,
    }


def speedup(time_with_bug: float, time_without_bug: float) -> float:
    """Table 1/3's speedup factor: buggy time over fixed time."""
    if time_without_bug <= 0:
        raise ValueError("fixed time must be positive")
    return time_with_bug / time_without_bug


def improvement_pct(baseline: float, improved: float) -> float:
    """Table 2's improvement: negative percentage = faster than baseline."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (improved - baseline) / baseline * 100.0

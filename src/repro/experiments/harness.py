"""Shared experiment plumbing: configuration, scaling, repetition."""

from __future__ import annotations

import os
import statistics
from dataclasses import dataclass, replace
from typing import Callable, FrozenSet, List, Sequence

from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import SEC
from repro.topology import amd_bulldozer_64
from repro.topology.machine import MachineTopology


def quick_scale(default: float = 1.0) -> float:
    """Experiment scale factor; ``REPRO_SCALE`` overrides (e.g. 0.25)."""
    value = os.environ.get("REPRO_SCALE")
    if value is None:
        return default
    scale = float(value)
    if scale <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {scale}")
    return scale


@dataclass(frozen=True)
class ExperimentConfig:
    """Machine + scheduler configuration for one experiment run."""

    features: SchedFeatures
    seed: int = 42
    scale: float = 1.0
    deadline_us: int = 600 * SEC
    topology_factory: Callable[[], MachineTopology] = amd_bulldozer_64
    #: Attach an observability session to every built system, so tables
    #: can report wakeup-to-run latency percentiles (``system.obs``).
    obs: bool = False

    def with_features(self, features: SchedFeatures) -> "ExperimentConfig":
        """A copy with a different scheduler configuration."""
        return replace(self, features=features)

    def with_obs(self, obs: bool = True) -> "ExperimentConfig":
        """A copy with observability on (or off)."""
        return replace(self, obs=obs)

    def build_system(self) -> System:
        """A fresh simulated machine for this configuration."""
        system = System(
            self.topology_factory(), self.features, seed=self.seed
        )
        if self.obs:
            from repro.obs import ObsSession
            from repro.obs.tracepoints import TracepointRegistry

            # A private registry per run: concurrent experiment systems
            # must not hear each other's scheduler events.
            system.obs = ObsSession.attach_to(
                system, trace=False, registry=TracepointRegistry()
            )
        return system


def node_cpuset(
    topology: MachineTopology, nodes: Sequence[int]
) -> FrozenSet[int]:
    """``numactl --cpunodebind`` analog: the CPU set of the given nodes."""
    return topology.cpus_of_nodes(list(nodes))


def averaged(
    run: Callable[[int], float],
    repetitions: int = 1,
    base_seed: int = 42,
) -> float:
    """Mean of ``run(seed)`` over varied seeds (the paper averages 5 runs)."""
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    values: List[float] = [
        run(base_seed + 1009 * i) for i in range(repetitions)
    ]
    return statistics.mean(values)


def speedup(time_with_bug: float, time_without_bug: float) -> float:
    """Table 1/3's speedup factor: buggy time over fixed time."""
    if time_without_bug <= 0:
        raise ValueError("fixed time must be positive")
    return time_with_bug / time_without_bug


def improvement_pct(baseline: float, improved: float) -> float:
    """Table 2's improvement: negative percentage = faster than baseline."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (improved - baseline) / baseline * 100.0

"""Table 1: NAS applications under the Scheduling Group Construction bug.

Paper setup: every NAS application launched with
``numactl --cpunodebind=1,2`` on the 8-node machine, with as many threads
as pinned cores (16).  Threads spawn on node 1 (children start on the
parent's node); with the bug, the machine-level scheduling groups both
contain nodes 1 and 2, so node 2 never steals and the whole application
runs on one node.  Speedups blow past 2x because of spin-synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import (
    ExperimentConfig,
    node_cpuset,
    schedule_digest,
    speedup,
    system_stats,
)
from repro.experiments.report import Table
from repro.perf.orchestrator import (
    ResultCache,
    TrialOutcome,
    TrialResult,
    TrialSpec,
    build_features,
    feature_tokens,
    run_trials,
)
from repro.sched.features import SchedFeatures
from repro.sim.timebase import SEC
from repro.workloads.nas import all_nas_names, nas_app

#: The nodes the paper pins to: two hops apart on the Bulldozer machine.
PINNED_NODES = (1, 2)

#: The orchestrator reference to this module's trial function.
TRIAL_KIND = "repro.experiments.table1:nas_pinned_trial"


@dataclass
class NasRunResult:
    """Completion time of one pinned NAS run, plus obs latency if on."""

    seconds: float
    wakeup_p50_us: Optional[float] = None
    wakeup_p99_us: Optional[float] = None
    #: Schedule fingerprint and counters of the run that produced this.
    schedule_digest: str = ""
    stats: Dict[str, int] = field(default_factory=dict)


@dataclass
class Table1Row:
    """One application's times under both configurations."""

    app: str
    time_with_bug_s: float
    time_without_bug_s: float
    #: Wakeup-to-run latency percentiles, filled when ``obs`` was on.
    bug_wakeup_p50_us: Optional[float] = None
    bug_wakeup_p99_us: Optional[float] = None
    fix_wakeup_p50_us: Optional[float] = None
    fix_wakeup_p99_us: Optional[float] = None

    @property
    def speedup(self) -> float:
        """Buggy time over fixed time."""
        return speedup(self.time_with_bug_s, self.time_without_bug_s)


def run_nas_pinned_result(
    config: ExperimentConfig,
    app_name: str,
    nr_threads: Optional[int] = None,
) -> NasRunResult:
    """One NAS run pinned to ``PINNED_NODES``, with full run statistics."""
    system = config.build_system()
    topo = system.topology
    allowed = node_cpuset(topo, PINNED_NODES)
    if nr_threads is None:
        nr_threads = len(allowed)
    app = nas_app(
        app_name,
        nr_threads,
        allowed_cpus=allowed,
        seed=config.seed,
        scale=config.scale,
    )
    # Threads spawn from a parent on node 1 (ssh session's shell).
    parent = min(topo.cpus_of_node(PINNED_NODES[0]))
    tasks = [system.spawn(spec, parent_cpu=parent) for spec in app.thread_specs()]
    done = system.run_until_done(tasks, config.deadline_us)
    seconds = (config.deadline_us if not done else system.now) / SEC
    result = NasRunResult(
        seconds,
        schedule_digest=schedule_digest(system),
        stats=system_stats(system),
    )
    if system.obs is not None:
        system.obs.close()
        latency = system.obs.recorder.wakeup_latency
        if latency.count():
            result.wakeup_p50_us = latency.percentile(50)
            result.wakeup_p99_us = latency.percentile(99)
    return result


def nas_pinned_trial(spec: TrialSpec) -> TrialResult:
    """Orchestrator trial: one pinned NAS run, rebuilt from the spec."""
    app = spec.param("app")
    if app is None:
        raise ValueError("table1 trial spec is missing its 'app' param")
    config = ExperimentConfig(
        build_features(spec.features),
        seed=spec.seed,
        scale=spec.scale,
        deadline_us=spec.deadline_us,
        obs=spec.param("obs") == "1",
    )
    r = run_nas_pinned_result(config, app)
    row: Dict[str, object] = {
        "app": app,
        "seconds": r.seconds,
        "wakeup_p50_us": r.wakeup_p50_us,
        "wakeup_p99_us": r.wakeup_p99_us,
    }
    return TrialResult(
        row=row, schedule_digest=r.schedule_digest, stats=r.stats
    )


def run_nas_pinned(
    config: ExperimentConfig,
    app_name: str,
    nr_threads: Optional[int] = None,
) -> float:
    """One NAS run pinned to ``PINNED_NODES``; returns completion seconds."""
    return run_nas_pinned_result(config, app_name, nr_threads).seconds


def table1_specs(
    scale: float = 0.25,
    apps: Optional[Sequence[str]] = None,
    seed: int = 42,
    deadline_us: int = 600 * SEC,
    obs: bool = False,
) -> List[TrialSpec]:
    """The flat trial grid of Table 1: (buggy, fixed) for every app."""
    variants = (
        feature_tokens(autogroup=False),
        feature_tokens("group_construction", autogroup=False),
    )
    extra = (("obs", "1"),) if obs else ()
    specs: List[TrialSpec] = []
    for app_name in apps or all_nas_names():
        for tokens in variants:
            specs.append(
                TrialSpec(
                    kind=TRIAL_KIND,
                    scenario=f"table1:{app_name}",
                    seed=seed,
                    features=tokens,
                    scale=scale,
                    deadline_us=deadline_us,
                    params=(("app", app_name),) + extra,
                )
            )
    return specs


def _opt_float(value: object) -> Optional[float]:
    return None if value is None else float(value)  # type: ignore[arg-type]


def table1_rows(outcomes: Sequence[TrialOutcome]) -> List[Table1Row]:
    """Merge trial outcomes (spec order: bug, fix per app) into rows."""
    rows: List[Table1Row] = []
    for i in range(0, len(outcomes), 2):
        bug, fix = outcomes[i].result.row, outcomes[i + 1].result.row
        rows.append(
            Table1Row(
                str(bug["app"]),
                float(bug["seconds"]),  # type: ignore[arg-type]
                float(fix["seconds"]),  # type: ignore[arg-type]
                bug_wakeup_p50_us=_opt_float(bug["wakeup_p50_us"]),
                bug_wakeup_p99_us=_opt_float(bug["wakeup_p99_us"]),
                fix_wakeup_p50_us=_opt_float(fix["wakeup_p50_us"]),
                fix_wakeup_p99_us=_opt_float(fix["wakeup_p99_us"]),
            )
        )
    return rows


def run_table1(
    scale: float = 0.25,
    apps: Optional[Sequence[str]] = None,
    seed: int = 42,
    deadline_us: int = 600 * SEC,
    obs: bool = False,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[Table1Row]:
    """Both configurations for every app, through the orchestrator."""
    specs = table1_specs(
        scale=scale, apps=apps, seed=seed, deadline_us=deadline_us, obs=obs
    )
    return table1_rows(run_trials(specs, jobs=jobs, cache=cache).outcomes)


#: Speedup factors the paper reports, for shape comparison.
PAPER_SPEEDUPS: Dict[str, float] = {
    "bt": 1.75, "cg": 2.73, "ep": 2.0, "ft": 1.92, "is": 1.33,
    "lu": 27.0, "mg": 2.03, "sp": 2.23, "ua": 3.63,
}


def format_table1(rows: List[Table1Row]) -> str:
    """Render the reproduced Table 1 with the paper's factors.

    When the rows carry obs latency (``run_table1(obs=True)``), the table
    grows wakeup-to-run percentile columns for both variants.
    """
    with_latency = any(r.bug_wakeup_p99_us is not None for r in rows)
    headers = ["app", "time w/ bug (s)", "time w/o bug (s)", "speedup (x)",
               "paper (x)"]
    if with_latency:
        headers += ["bug wake p50/p99 (us)", "fix wake p50/p99 (us)"]
    table = Table(
        "Table 1: NAS with the Scheduling Group Construction bug "
        "(numactl --cpunodebind=1,2)",
        headers,
    )

    def pair(p50, p99):
        if p99 is None:
            return "-"
        return f"{p50:.0f}/{p99:.0f}"

    for row in rows:
        cells = [
            row.app,
            f"{row.time_with_bug_s:.3f}",
            f"{row.time_without_bug_s:.3f}",
            f"{row.speedup:.2f}",
            f"{PAPER_SPEEDUPS.get(row.app, float('nan')):.2f}",
        ]
        if with_latency:
            cells.append(pair(row.bug_wakeup_p50_us, row.bug_wakeup_p99_us))
            cells.append(pair(row.fix_wakeup_p50_us, row.fix_wakeup_p99_us))
        table.add_row(*cells)
    table.add_note(
        "absolute times are simulator-scaled; the reproduction target is "
        "the speedup column's shape (all > 1, lu extreme)"
    )
    return table.render()

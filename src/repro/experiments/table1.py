"""Table 1: NAS applications under the Scheduling Group Construction bug.

Paper setup: every NAS application launched with
``numactl --cpunodebind=1,2`` on the 8-node machine, with as many threads
as pinned cores (16).  Threads spawn on node 1 (children start on the
parent's node); with the bug, the machine-level scheduling groups both
contain nodes 1 and 2, so node 2 never steals and the whole application
runs on one node.  Speedups blow past 2x because of spin-synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import (
    ExperimentConfig,
    node_cpuset,
    speedup,
)
from repro.experiments.report import Table
from repro.sched.features import SchedFeatures
from repro.sim.timebase import SEC
from repro.workloads.nas import all_nas_names, nas_app

#: The nodes the paper pins to: two hops apart on the Bulldozer machine.
PINNED_NODES = (1, 2)


@dataclass
class Table1Row:
    """One application's times under both configurations."""

    app: str
    time_with_bug_s: float
    time_without_bug_s: float

    @property
    def speedup(self) -> float:
        """Buggy time over fixed time."""
        return speedup(self.time_with_bug_s, self.time_without_bug_s)


def run_nas_pinned(
    config: ExperimentConfig,
    app_name: str,
    nr_threads: Optional[int] = None,
) -> float:
    """One NAS run pinned to ``PINNED_NODES``; returns completion seconds."""
    system = config.build_system()
    topo = system.topology
    allowed = node_cpuset(topo, PINNED_NODES)
    if nr_threads is None:
        nr_threads = len(allowed)
    app = nas_app(
        app_name,
        nr_threads,
        allowed_cpus=allowed,
        seed=config.seed,
        scale=config.scale,
    )
    # Threads spawn from a parent on node 1 (ssh session's shell).
    parent = min(topo.cpus_of_node(PINNED_NODES[0]))
    tasks = [system.spawn(spec, parent_cpu=parent) for spec in app.thread_specs()]
    done = system.run_until_done(tasks, config.deadline_us)
    if not done:
        return config.deadline_us / SEC
    return system.now / SEC


def run_table1(
    scale: float = 0.25,
    apps: Optional[Sequence[str]] = None,
    seed: int = 42,
    deadline_us: int = 600 * SEC,
) -> List[Table1Row]:
    """Both configurations for every app."""
    rows: List[Table1Row] = []
    buggy = ExperimentConfig(
        SchedFeatures().without_autogroup(),
        seed=seed, scale=scale, deadline_us=deadline_us,
    )
    fixed = buggy.with_features(
        SchedFeatures().with_fixes("group_construction").without_autogroup()
    )
    for app_name in apps or all_nas_names():
        t_bug = run_nas_pinned(buggy, app_name)
        t_fix = run_nas_pinned(fixed, app_name)
        rows.append(Table1Row(app_name, t_bug, t_fix))
    return rows


#: Speedup factors the paper reports, for shape comparison.
PAPER_SPEEDUPS: Dict[str, float] = {
    "bt": 1.75, "cg": 2.73, "ep": 2.0, "ft": 1.92, "is": 1.33,
    "lu": 27.0, "mg": 2.03, "sp": 2.23, "ua": 3.63,
}


def format_table1(rows: List[Table1Row]) -> str:
    """Render the reproduced Table 1 with the paper's factors."""
    table = Table(
        "Table 1: NAS with the Scheduling Group Construction bug "
        "(numactl --cpunodebind=1,2)",
        ["app", "time w/ bug (s)", "time w/o bug (s)", "speedup (x)",
         "paper (x)"],
    )
    for row in rows:
        table.add_row(
            row.app,
            f"{row.time_with_bug_s:.3f}",
            f"{row.time_without_bug_s:.3f}",
            f"{row.speedup:.2f}",
            f"{PAPER_SPEEDUPS.get(row.app, float('nan')):.2f}",
        )
    table.add_note(
        "absolute times are simulator-scaled; the reproduction target is "
        "the speedup column's shape (all > 1, lu extreme)"
    )
    return table.render()

"""Minimal per-bug scenarios: one reproducible setup for each paper bug.

The CLI's ``demo``, ``trace`` and ``metrics`` subcommands all run the same
small workloads -- the smallest arrangement of tasks that makes each bug's
invariant violation appear within about a second of simulated time.  This
module is the single home for those setups so they stay identical across
commands (and tests).

Bug names accept both spellings (``group_imbalance`` and
``group-imbalance``); :func:`canonical_bug_name` normalizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.sanity_checker import SanityChecker
from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import MS, SEC
from repro.stats.metrics import IdleOverloadSampler
from repro.topology import amd_bulldozer_64, two_nodes
from repro.workloads.base import Run, Sleep, TaskSpec

#: Canonical bug name -> SchedFeatures fix key.
BUG_FIXES = {
    "group-imbalance": "group_imbalance",
    "group-construction": "group_construction",
    "overload-on-wakeup": "overload_on_wakeup",
    "missing-domains": "missing_domains",
}

#: Names accepted on the command line.
BUG_NAMES = tuple(sorted(BUG_FIXES))

#: Simulated time each scenario needs for its violation to be confirmed.
DEFAULT_DURATION_US = 1 * SEC


def canonical_bug_name(name: str) -> str:
    """Normalize ``group_imbalance`` / ``group-imbalance`` to one spelling."""
    canonical = name.strip().lower().replace("_", "-")
    if canonical not in BUG_FIXES:
        raise ValueError(
            f"unknown bug {name!r}; expected one of {', '.join(BUG_NAMES)}"
        )
    return canonical


def _hog(name: str, allowed=None) -> TaskSpec:
    """An always-runnable CPU hog."""

    def factory():
        def program():
            while True:
                yield Run(5 * MS)

        return program()

    return TaskSpec(name, factory, allowed_cpus=allowed)


@dataclass
class BugScenario:
    """A live system set up to exhibit (or not) one of the paper's bugs."""

    bug: str
    variant: str
    system: System
    checker: SanityChecker
    sampler: IdleOverloadSampler
    duration_us: int = DEFAULT_DURATION_US

    def run(self, duration_us: Optional[int] = None) -> None:
        """Advance the scenario by its (or the given) duration."""
        self.system.run_for(
            duration_us if duration_us is not None else self.duration_us
        )


def build_bug_scenario(
    bug: str,
    variant: str = "buggy",
    seed: int = 42,
    instrument: Optional[Callable[[System], None]] = None,
    features_transform: Optional[
        Callable[[SchedFeatures], SchedFeatures]
    ] = None,
) -> BugScenario:
    """Build one bug's minimal scenario, sanity checker attached.

    ``variant`` is ``"buggy"`` (mainline behavior) or ``"fixed"`` (the
    paper's patch enabled).  ``instrument`` runs after the system exists
    but before any task spawns, so observers (``ObsSession``, trace
    probes) see the run from time zero.  ``features_transform`` maps the
    scenario's final feature set to a variant -- the bench harness uses it
    to toggle the simulator fast paths (``with_fastpath``) without
    touching the scheduling behavior under test.
    """
    bug = canonical_bug_name(bug)
    if variant not in ("buggy", "fixed"):
        raise ValueError(f"variant must be 'buggy' or 'fixed', not {variant!r}")

    features = SchedFeatures()
    if bug != "group-imbalance":
        # Only the imbalance scenario needs autogroup's per-tty load
        # distortion; elsewhere it just obscures the bug under study.
        features = features.without_autogroup()
    if variant == "fixed":
        features = features.with_fixes(BUG_FIXES[bug])
    if features_transform is not None:
        features = features_transform(features)
    if bug == "group-construction":
        # Needs the 8-node machine: the bug is in how its asymmetric
        # interconnect is folded into machine-level scheduling groups.
        topo = amd_bulldozer_64()
    else:
        topo = two_nodes(cores_per_node=4)

    system = System(topo, features, seed=seed)
    checker = SanityChecker(
        check_interval_us=100 * MS, monitor_window_us=50 * MS
    )
    checker.attach(system)
    sampler = IdleOverloadSampler()
    sampler.attach(system)
    if instrument is not None:
        instrument(system)

    if bug == "missing-domains":
        # Hotplug cycle: domains are not rebuilt on re-entry, so the
        # returned core is never balanced to.
        system.hotplug_cpu(2, False)
        system.hotplug_cpu(2, True)
        for i in range(8):
            system.spawn(_hog(f"t{i}"), parent_cpu=0)
    elif bug == "group-construction":
        # numactl-style pinning to nodes two hops apart.
        allowed = topo.cpus_of_nodes([1, 2])
        for i in range(16):
            system.spawn(_hog(f"t{i}", allowed), parent_cpu=8)
    elif bug == "group-imbalance":
        # One high-load R process in its own autogroup vs many make jobs.
        # The make jobs all start on CPU 1, like forks landing on their
        # parent's core: intra-node (MC) balancing spreads them -- those
        # migrations are real even in the buggy variant -- but the R
        # node's inflated average load defeats node-level balancing, so
        # the imbalance across nodes persists.
        from repro.workloads.cpubound import r_process

        system.spawn(r_process("R1", tty="tty-r"), on_cpu=4)
        for i in range(16):
            system.spawn(_hog(f"mk{i}"), on_cpu=1)
            system.scheduler.cgroups.attach(
                system.spawned[-1],
                system.scheduler.cgroups.autogroup_for_tty("tty-make"),
            )
    else:  # overload-on-wakeup
        # Pinned hogs fill every core; a frequently-sleeping task keeps
        # waking onto its cache-hot (busy) core 0.
        for i in range(4):
            system.spawn(_hog(f"hog{i}", frozenset({i})), on_cpu=i)

        def sleepy_factory():
            def program():
                for _ in range(400):
                    yield Run(1 * MS)
                    yield Sleep(1 * MS)

            return program()

        system.spawn(TaskSpec("sleepy", sleepy_factory), on_cpu=0)

    return BugScenario(
        bug=bug,
        variant=variant,
        system=system,
        checker=checker,
        sampler=sampler,
    )

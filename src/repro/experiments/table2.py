"""Table 2: the commercial database running TPC-H under bug-fix combos.

Paper setup: the database runs 64 worker threads (one per core) from a
handful of container processes (each its own autogroup).  Transient kernel
threads perturb the load; the Overload-on-Wakeup bug then strands workers
on overloaded cores, and the Group Imbalance bug (via the containers'
different pool sizes) adds its own idling.  Four configurations are
compared: no fixes, each fix alone, both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.harness import (
    ExperimentConfig,
    averaged,
    improvement_pct,
)
from repro.experiments.report import Table
from repro.sched.features import SchedFeatures
from repro.sim.timebase import SEC
from repro.workloads.database import Database, query18, tpch_queries
from repro.workloads.transient import TransientLoad

#: Container worker-pool sizes: sum = 64 (one worker per core), deliberately
#: uneven so autogroup load divisors differ (the paper's footnote 4).
CONTAINERS = (28, 16, 12, 8)

#: Background kernel-thread injection (logging, irq handling analogs).
TRANSIENT_RATE_PER_SEC = 300.0
TRANSIENT_DURATION_US = 800

#: The four configurations of the paper's Table 2, in order.
CONFIGS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("None", ()),
    ("Group Imbalance", ("group_imbalance",)),
    ("Overload-on-Wakeup", ("overload_on_wakeup",)),
    ("Both", ("group_imbalance", "overload_on_wakeup")),
)


@dataclass
class Table2Cell:
    """One measured completion time, with its improvement vs baseline."""

    seconds: float
    improvement_pct: Optional[float]  # None for the baseline row


@dataclass
class Table2Row:
    """One fix configuration's Q18 and full-benchmark results."""

    config: str
    q18: Table2Cell
    full: Table2Cell


def run_tpch(
    config: ExperimentConfig,
    workload: str,
    repeats: int = 3,
) -> float:
    """Run the DB workload; returns total completion seconds.

    ``workload``: ``"q18"`` (the paper's request 18, run ``repeats`` times)
    or ``"full"`` (the whole 22-query benchmark).
    """
    system = config.build_system()
    db = Database(
        containers=CONTAINERS, seed=config.seed, think_time_us=1_000
    )
    db.bind(system)
    transients = TransientLoad(
        rate_per_sec=TRANSIENT_RATE_PER_SEC,
        duration_us=TRANSIENT_DURATION_US,
        seed=config.seed + 1,
    )
    transients.attach(system)
    workers = [
        system.spawn(spec, parent_cpu=i % system.topology.num_cpus)
        for i, spec in enumerate(db.worker_specs())
    ]
    if workload == "q18":
        queries = [query18(config.scale)] * repeats
    elif workload == "full":
        # Scale the full suite's rounds up so per-query noise (startup,
        # think time) does not drown the effect on short queries.
        queries = tpch_queries(config.scale * 1.5)
    else:
        raise ValueError(f"unknown workload {workload!r}")
    driver = system.spawn(db.driver_spec(queries), parent_cpu=0)
    done = system.run_until_done([driver], config.deadline_us)
    if not done:
        return config.deadline_us / SEC
    del workers
    return sum(r.latency_us for r in db.results) / SEC


def run_table2(
    scale: float = 1.0,
    seed: int = 42,
    q18_repeats: int = 6,
    runs: int = 3,
    deadline_us: int = 900 * SEC,
) -> List[Table2Row]:
    """All four configurations; each cell averaged over ``runs`` seeds
    (the paper averages five runs)."""
    rows: List[Table2Row] = []
    base_q18: Optional[float] = None
    base_full: Optional[float] = None
    for label, fixes in CONFIGS:
        features = SchedFeatures().with_fixes(*fixes) if fixes else SchedFeatures()

        def one(workload: str, run_seed: int) -> float:
            config = ExperimentConfig(
                features, seed=run_seed, scale=scale,
                deadline_us=deadline_us,
            )
            return run_tpch(
                config, workload,
                repeats=q18_repeats if workload == "q18" else 1,
            )

        t_q18 = averaged(lambda s: one("q18", s), runs, base_seed=seed)
        t_full = averaged(lambda s: one("full", s), runs, base_seed=seed)
        if base_q18 is None:
            base_q18, base_full = t_q18, t_full
            rows.append(
                Table2Row(label, Table2Cell(t_q18, None),
                          Table2Cell(t_full, None))
            )
        else:
            rows.append(
                Table2Row(
                    label,
                    Table2Cell(t_q18, improvement_pct(base_q18, t_q18)),
                    Table2Cell(t_full, improvement_pct(base_full, t_full)),
                )
            )
    return rows


#: The paper's Table 2 percentages, for shape comparison.
PAPER_IMPROVEMENTS: Dict[str, Tuple[float, float]] = {
    "Group Imbalance": (-13.1, -5.4),
    "Overload-on-Wakeup": (-22.2, -13.2),
    "Both": (-22.6, -14.2),
}


def _fmt(cell: Table2Cell) -> str:
    if cell.improvement_pct is None:
        return f"{cell.seconds:.3f}s"
    return f"{cell.seconds:.3f}s ({cell.improvement_pct:+.1f}%)"


def format_table2(rows: List[Table2Row]) -> str:
    """Render the reproduced Table 2 with the paper's percentages."""
    table = Table(
        "Table 2: TPC-H on the commercial database under bug-fix "
        "combinations",
        ["bug fixes", "TPC-H request #18", "full TPC-H", "paper (#18, full)"],
    )
    for row in rows:
        paper = PAPER_IMPROVEMENTS.get(row.config)
        paper_s = (
            f"{paper[0]:+.1f}%, {paper[1]:+.1f}%" if paper else "baseline"
        )
        table.add_row(row.config, _fmt(row.q18), _fmt(row.full), paper_s)
    table.add_note(
        "negative percentages = faster than the unfixed scheduler; the "
        "paper's ordering (OoW > GI, Both best) is the target shape"
    )
    return table.render()

"""Table 2: the commercial database running TPC-H under bug-fix combos.

Paper setup: the database runs 64 worker threads (one per core) from a
handful of container processes (each its own autogroup).  Transient kernel
threads perturb the load; the Overload-on-Wakeup bug then strands workers
on overloaded cores, and the Group Imbalance bug (via the containers'
different pool sizes) adds its own idling.  Four configurations are
compared: no fixes, each fix alone, both.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import (
    ExperimentConfig,
    improvement_pct,
    repetition_seeds,
    schedule_digest,
    system_stats,
)
from repro.experiments.report import Table
from repro.perf.orchestrator import (
    ResultCache,
    TrialOutcome,
    TrialResult,
    TrialSpec,
    build_features,
    feature_tokens,
    run_trials,
)
from repro.sim.timebase import SEC
from repro.workloads.database import Database, query18, tpch_queries
from repro.workloads.transient import TransientLoad

#: Container worker-pool sizes: sum = 64 (one worker per core), deliberately
#: uneven so autogroup load divisors differ (the paper's footnote 4).
CONTAINERS = (28, 16, 12, 8)

#: Background kernel-thread injection (logging, irq handling analogs).
TRANSIENT_RATE_PER_SEC = 300.0
TRANSIENT_DURATION_US = 800

#: The four configurations of the paper's Table 2, in order.
CONFIGS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("None", ()),
    ("Group Imbalance", ("group_imbalance",)),
    ("Overload-on-Wakeup", ("overload_on_wakeup",)),
    ("Both", ("group_imbalance", "overload_on_wakeup")),
)

#: The orchestrator reference to this module's trial function.
TRIAL_KIND = "repro.experiments.table2:tpch_trial"


@dataclass
class Table2Cell:
    """One measured completion time, with its improvement vs baseline."""

    seconds: float
    improvement_pct: Optional[float]  # None for the baseline row


@dataclass
class Table2Row:
    """One fix configuration's Q18 and full-benchmark results."""

    config: str
    q18: Table2Cell
    full: Table2Cell


def run_tpch(
    config: ExperimentConfig,
    workload: str,
    repeats: int = 3,
) -> float:
    """Run the DB workload; returns total completion seconds.

    ``workload``: ``"q18"`` (the paper's request 18, run ``repeats`` times)
    or ``"full"`` (the whole 22-query benchmark).
    """
    seconds, _ = _run_tpch_system(config, workload, repeats)
    return seconds


def _run_tpch_system(
    config: ExperimentConfig,
    workload: str,
    repeats: int = 3,
) -> Tuple[float, object]:
    """:func:`run_tpch`, also returning the finished system (for digests)."""
    system = config.build_system()
    db = Database(
        containers=CONTAINERS, seed=config.seed, think_time_us=1_000
    )
    db.bind(system)
    transients = TransientLoad(
        rate_per_sec=TRANSIENT_RATE_PER_SEC,
        duration_us=TRANSIENT_DURATION_US,
        seed=config.seed + 1,
    )
    transients.attach(system)
    workers = [
        system.spawn(spec, parent_cpu=i % system.topology.num_cpus)
        for i, spec in enumerate(db.worker_specs())
    ]
    if workload == "q18":
        queries = [query18(config.scale)] * repeats
    elif workload == "full":
        # Scale the full suite's rounds up so per-query noise (startup,
        # think time) does not drown the effect on short queries.
        queries = tpch_queries(config.scale * 1.5)
    else:
        raise ValueError(f"unknown workload {workload!r}")
    driver = system.spawn(db.driver_spec(queries), parent_cpu=0)
    done = system.run_until_done([driver], config.deadline_us)
    if not done:
        return config.deadline_us / SEC, system
    del workers
    return sum(r.latency_us for r in db.results) / SEC, system


def tpch_trial(spec: TrialSpec) -> TrialResult:
    """Orchestrator trial: one TPC-H run, rebuilt from the spec."""
    workload = spec.param("workload")
    if workload is None:
        raise ValueError("table2 trial spec is missing its 'workload' param")
    repeats = int(spec.param("repeats", "1") or "1")
    config = ExperimentConfig(
        build_features(spec.features),
        seed=spec.seed,
        scale=spec.scale,
        deadline_us=spec.deadline_us,
    )
    seconds, system = _run_tpch_system(config, workload, repeats)
    row: Dict[str, object] = {"workload": workload, "seconds": seconds}
    return TrialResult(
        row=row,
        schedule_digest=schedule_digest(system),
        stats=system_stats(system),
    )


def table2_specs(
    scale: float = 1.0,
    seed: int = 42,
    q18_repeats: int = 6,
    runs: int = 3,
    deadline_us: int = 900 * SEC,
) -> List[TrialSpec]:
    """The flat trial grid: config x workload x repetition seed."""
    specs: List[TrialSpec] = []
    for label, fixes in CONFIGS:
        tokens = feature_tokens(*fixes)
        for workload in ("q18", "full"):
            repeats = q18_repeats if workload == "q18" else 1
            for run_seed in repetition_seeds(seed, runs):
                specs.append(
                    TrialSpec(
                        kind=TRIAL_KIND,
                        scenario=f"table2:{label}:{workload}",
                        seed=run_seed,
                        features=tokens,
                        scale=scale,
                        deadline_us=deadline_us,
                        params=(
                            ("workload", workload),
                            ("repeats", str(repeats)),
                        ),
                    )
                )
    return specs


def table2_rows(
    outcomes: Sequence[TrialOutcome], runs: int
) -> List[Table2Row]:
    """Average each (config, workload) cell and derive improvements."""
    means: List[float] = []
    for i in range(0, len(outcomes), runs):
        group = outcomes[i:i + runs]
        means.append(
            statistics.mean(
                float(o.result.row["seconds"])  # type: ignore[arg-type]
                for o in group
            )
        )
    rows: List[Table2Row] = []
    base_q18: Optional[float] = None
    base_full: Optional[float] = None
    for i, (label, _) in enumerate(CONFIGS):
        t_q18, t_full = means[2 * i], means[2 * i + 1]
        if base_q18 is None or base_full is None:
            base_q18, base_full = t_q18, t_full
            rows.append(
                Table2Row(label, Table2Cell(t_q18, None),
                          Table2Cell(t_full, None))
            )
        else:
            rows.append(
                Table2Row(
                    label,
                    Table2Cell(t_q18, improvement_pct(base_q18, t_q18)),
                    Table2Cell(t_full, improvement_pct(base_full, t_full)),
                )
            )
    return rows


def run_table2(
    scale: float = 1.0,
    seed: int = 42,
    q18_repeats: int = 6,
    runs: int = 3,
    deadline_us: int = 900 * SEC,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[Table2Row]:
    """All four configurations; each cell averaged over ``runs`` seeds
    (the paper averages five runs).  Trials fan out via the orchestrator."""
    specs = table2_specs(
        scale=scale, seed=seed, q18_repeats=q18_repeats, runs=runs,
        deadline_us=deadline_us,
    )
    run = run_trials(specs, jobs=jobs, cache=cache)
    return table2_rows(run.outcomes, runs)


#: The paper's Table 2 percentages, for shape comparison.
PAPER_IMPROVEMENTS: Dict[str, Tuple[float, float]] = {
    "Group Imbalance": (-13.1, -5.4),
    "Overload-on-Wakeup": (-22.2, -13.2),
    "Both": (-22.6, -14.2),
}


def _fmt(cell: Table2Cell) -> str:
    if cell.improvement_pct is None:
        return f"{cell.seconds:.3f}s"
    return f"{cell.seconds:.3f}s ({cell.improvement_pct:+.1f}%)"


def format_table2(rows: List[Table2Row]) -> str:
    """Render the reproduced Table 2 with the paper's percentages."""
    table = Table(
        "Table 2: TPC-H on the commercial database under bug-fix "
        "combinations",
        ["bug fixes", "TPC-H request #18", "full TPC-H", "paper (#18, full)"],
    )
    for row in rows:
        paper = PAPER_IMPROVEMENTS.get(row.config)
        paper_s = (
            f"{paper[0]:+.1f}%, {paper[1]:+.1f}%" if paper else "baseline"
        )
        table.add_row(row.config, _fmt(row.q18), _fmt(row.full), paper_s)
    table.add_note(
        "negative percentages = faster than the unfixed scheduler; the "
        "paper's ordering (OoW > GI, Both best) is the target shape"
    )
    return table.render()

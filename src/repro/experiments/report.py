"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class Table:
    """A titled table with a header row and string-convertible cells."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        return format_table(self)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(table: Table) -> str:
    """Monospace rendering with aligned columns."""
    str_rows = [[_cell(c) for c in row] for row in table.rows]
    widths = [len(h) for h in table.headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [table.title, sep, fmt_row(list(table.headers)), sep]
    lines.extend(fmt_row(row) for row in str_rows)
    lines.append(sep)
    for note in table.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)

"""Figure 5: the Missing Scheduling Domains bug's considered-cores plot.

Paper setup: after a core disable/re-enable, a 16-thread application is
launched; all its threads pack onto one node (node 1).  The figure shows
vertical lines for the cores Core 0 examines on each (failed) load-
balancing call, every 4 ms: under the bug, Core 0 only ever considers its
SMT sibling and its own node -- never the overloaded node.

We record every balancing call's considered-core set from the observer
core and measure the *coverage fraction*: what share of the machine the
observer's balancing ever looks at (1/8th under the bug, ~1.0 fixed).
"""

from __future__ import annotations

import os

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.harness import ExperimentConfig, schedule_digest
from repro.perf.orchestrator import (
    ResultCache,
    TrialResult,
    TrialSpec,
    build_features,
    feature_tokens,
    run_trials,
)
from repro.viz.considered import (
    considered_core_sets,
    coverage_fraction,
    render_ascii_considered,
    render_svg_considered,
)
from repro.viz.events import TraceBuffer, TraceProbe
from repro.workloads.cpubound import cpu_hog_program
from repro.workloads.base import TaskSpec

#: The core whose balancing calls the figure observes.
OBSERVER_CPU = 0
#: The core hotplugged to trigger the bug.
HOTPLUGGED_CPU = 9

#: The orchestrator reference to this module's trial function.
TRIAL_KIND = "repro.experiments.figure5:hotplug_trial"


@dataclass
class Figure5Run:
    """One traced hotplug run and its considered-core coverage."""

    label: str
    trace: TraceBuffer
    span_us: int
    num_cpus: int
    cores_per_node: int
    coverage: float
    balancing_calls: int
    #: Schedule fingerprint of the run (tracing does not perturb it).
    schedule_digest: str = ""


def run_hotplug_traced(
    config: ExperimentConfig,
    nr_threads: int = 16,
    run_ms: int = 200,
) -> Figure5Run:
    """Hotplug a core, launch the app, record balancing decisions."""
    system = config.build_system()
    topo = system.topology
    system.hotplug_cpu(HOTPLUGGED_CPU, False)
    system.hotplug_cpu(HOTPLUGGED_CPU, True)
    probe = TraceProbe(
        record_load=False, record_wakeups=False,
        record_migrations=False, record_lifecycle=False,
    )
    system.attach_probe(probe)
    # A 16-thread compute application forked from node 1 (the paper's
    # overloaded node).
    parent = min(topo.cpus_of_node(1 % topo.num_nodes))
    tasks = [
        system.spawn(
            TaskSpec(f"app-t{i}", cpu_hog_program(None)),
            parent_cpu=parent,
        )
        for i in range(nr_threads)
    ]
    system.run_for(run_ms * 1000)
    del tasks
    events = considered_core_sets(probe.buffer, OBSERVER_CPU, "load_balance")
    return Figure5Run(
        label=config.features.describe(),
        trace=probe.buffer,
        span_us=system.now,
        num_cpus=topo.num_cpus,
        cores_per_node=topo.cores_per_node,
        coverage=coverage_fraction(events, topo.num_cpus),
        balancing_calls=len(events),
        schedule_digest=schedule_digest(system),
    )


def hotplug_trial(spec: TrialSpec) -> TrialResult:
    """Orchestrator trial: one post-hotplug traced run from the spec."""
    nr_threads = int(spec.param("threads", "16") or "16")
    run_ms = int(spec.param("run_ms", "200") or "200")
    config = ExperimentConfig(
        build_features(spec.features), seed=spec.seed, scale=spec.scale
    )
    run = run_hotplug_traced(config, nr_threads=nr_threads, run_ms=run_ms)
    row: Dict[str, object] = {
        "label": run.label,
        "span_us": run.span_us,
        "coverage": run.coverage,
        "balancing_calls": run.balancing_calls,
    }
    want_artifact = spec.param("artifact") == "1"
    return TrialResult(
        row=row,
        schedule_digest=run.schedule_digest,
        stats={"sim_us": run.span_us},
        artifact=run if want_artifact else None,
    )


def figure5_specs(
    seed: int = 42,
    nr_threads: int = 16,
    run_ms: int = 200,
    artifact: bool = True,
) -> List[TrialSpec]:
    """The (buggy, fixed) hotplug trial pair."""
    specs: List[TrialSpec] = []
    for tokens in (
        feature_tokens(autogroup=False),
        feature_tokens("missing_domains", autogroup=False),
    ):
        params: tuple = (("threads", str(nr_threads)),
                         ("run_ms", str(run_ms)))
        if artifact:
            params += (("artifact", "1"),)
        specs.append(
            TrialSpec(
                kind=TRIAL_KIND,
                scenario="figure5:hotplug",
                seed=seed,
                features=tokens,
                params=params,
                cache=not artifact,
            )
        )
    return specs


@dataclass
class Figure5Result:
    """Buggy and fixed traced runs, side by side."""

    buggy: Figure5Run
    fixed: Figure5Run


def run_figure5(
    seed: int = 42,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Figure5Result:
    """Run the hotplug scenario under the bug and the fix."""
    run = run_trials(figure5_specs(seed=seed), jobs=jobs, cache=cache)
    buggy, fixed = (o.result.artifact for o in run.outcomes)
    return Figure5Result(buggy=buggy, fixed=fixed)


def render_figure5(
    result: Figure5Result,
    ascii_output: bool = True,
    svg_dir: Optional[str] = None,
) -> str:
    sections = []
    for tag, run in (("with bug", result.buggy), ("fix applied", result.fixed)):
        if ascii_output:
            sections.append(
                f"Figure 5 ({tag}): cores considered by core "
                f"{OBSERVER_CPU}'s load balancing\n"
                + render_ascii_considered(
                    run.trace, OBSERVER_CPU, run.num_cpus, max_events=12
                )
            )
        if svg_dir is not None:
            os.makedirs(svg_dir, exist_ok=True)
            path = f"{svg_dir}/figure5-{tag.replace(' ', '-')}.svg"
            with open(path, "w", encoding="utf-8") as f:
                f.write(
                    render_svg_considered(
                        run.trace, OBSERVER_CPU, run.num_cpus,
                        0, run.span_us,
                        cores_per_node=run.cores_per_node,
                        title=f"Figure 5 ({tag})",
                    )
                )
            sections.append(f"(SVG written to {path})")
        sections.append(
            f"  {tag}: {run.balancing_calls} balancing calls by core "
            f"{OBSERVER_CPU}; coverage of the machine: {run.coverage:.1%}"
        )
    return "\n\n".join(sections)

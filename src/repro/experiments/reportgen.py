"""The full evaluation report, generated through one orchestrated run.

``repro report`` used to execute every section serially: table 1 fully
finished before table 2 started, and so on.  This module instead emits
**one flat spec list across all sections** and hands it to the
orchestrator in a single :func:`repro.perf.orchestrator.run_trials`
call -- so with ``--jobs 4`` a table-3 NAS run can execute while a
table-2 TPC-H trial is still going, and the worker pool never drains
between sections.  Outcomes come back in spec order, each section's
slice is merged by its own driver, and the rendered markdown is
byte-identical to a serial run.

The figure sections use the drivers' artifact-free trial variants: the
report only prints summary numbers (make seconds, wakeup fractions,
balancing coverage), which the workers compute in-process, so every
report trial is cacheable and a warm-cache rerun touches no simulator
at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.perf.orchestrator import (
    OrchestratorRun,
    PoolStats,
    ResultCache,
    TrialOutcome,
    TrialSpec,
    run_trials,
)

#: Scale used when the report runs in ``--quick`` mode (CI smoke runs).
QUICK_SCALE = 0.05

#: Parent-side progress hook, re-exported for the CLI.
Progress = Callable[[int, int, TrialOutcome], None]


@dataclass
class ReportResult:
    """The rendered report plus its equivalence and utilization evidence."""

    markdown: str
    #: Schedule digest of every trial, in spec order.  Two runs of the
    #: same report (any ``--jobs``) must produce identical lists.
    digests: List[str]
    stats: PoolStats
    #: Summed integer counters of every trial (sim_us, events_fired,
    #: migrations, balance_calls) -- the throughput side of the story.
    counters: Dict[str, int]


def report_sections(
    scale: float, seed: int = 42
) -> List[Tuple[str, List[TrialSpec]]]:
    """Every section's trial specs, in report order."""
    from repro.experiments.figure2 import figure2_specs
    from repro.experiments.figure3 import figure3_specs
    from repro.experiments.figure5 import figure5_specs
    from repro.experiments.table1 import table1_specs
    from repro.experiments.table2 import table2_specs
    from repro.experiments.table3 import table3_specs

    return [
        ("table1", table1_specs(scale=scale, seed=seed)),
        ("table2", table2_specs(scale=min(scale * 5, 1.0), seed=seed,
                                runs=1)),
        ("table3", table3_specs(scale=scale, seed=seed)),
        ("figure2", figure2_specs(scale=min(scale * 2, 1.0), seed=seed,
                                  traced=False)),
        ("figure3", figure3_specs(scale=min(scale * 5, 1.0), seed=seed,
                                  artifact=False)),
        ("figure5", figure5_specs(seed=seed, artifact=False)),
    ]


def generate_report(
    scale: float = 0.2,
    seed: int = 42,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[Progress] = None,
) -> ReportResult:
    """Run every experiment through one orchestrated pool; render markdown."""
    from repro.experiments.figure5 import OBSERVER_CPU
    from repro.experiments.figures_topology import (
        format_figure4,
        format_table5,
    )
    from repro.experiments.table1 import format_table1, table1_rows
    from repro.experiments.table2 import format_table2, table2_rows
    from repro.experiments.table3 import format_table3, table3_rows
    from repro.experiments.table4 import format_table4

    sections = report_sections(scale, seed=seed)
    flat: List[TrialSpec] = [s for _, specs in sections for s in specs]
    run: OrchestratorRun = run_trials(
        flat, jobs=jobs, cache=cache, progress=progress
    )

    # Slice the flat outcome list back into per-section runs.
    by_name = {}
    offset = 0
    for name, specs in sections:
        by_name[name] = run.outcomes[offset:offset + len(specs)]
        offset += len(specs)

    out: List[str] = []
    out.append("# wastedcores reproduction report\n")
    out.append(f"(scale = {scale}; all times are simulator times)\n")

    out.append("## Machine\n```")
    out.append(format_table5())
    out.append("")
    out.append(format_figure4())
    out.append("```\n")

    out.append("## Table 1\n```")
    out.append(format_table1(table1_rows(by_name["table1"])))
    out.append("```\n")

    out.append("## Table 2\n```")
    out.append(format_table2(table2_rows(by_name["table2"], runs=1)))
    out.append("```\n")

    out.append("## Table 3\n```")
    out.append(format_table3(table3_rows(by_name["table3"])))
    out.append("```\n")

    out.append("## Table 4\n```")
    out.append(format_table4())
    out.append("```\n")

    f2_bug, f2_fix = (o.result.row for o in by_name["figure2"])
    make_bug = float(f2_bug["make_seconds"])  # type: ignore[arg-type]
    make_fix = float(f2_fix["make_seconds"])  # type: ignore[arg-type]
    improvement = (make_fix - make_bug) / make_bug * 100.0
    out.append("## Figure 2\n```")
    out.append(
        f"make: {make_bug:.3f}s buggy vs "
        f"{make_fix:.3f}s fixed "
        f"({improvement:+.1f}%); "
        f"idle R-node core-s "
        f"{float(f2_bug['idle_node_core_seconds']):.2f} vs "  # type: ignore[arg-type]
        f"{float(f2_fix['idle_node_core_seconds']):.2f}"  # type: ignore[arg-type]
    )
    out.append("```\n")

    f3_bug, f3_fix = (o.result.row for o in by_name["figure3"])
    out.append("## Figure 3\n```")
    out.append(
        f"busy-core wakeups: "
        f"{float(f3_bug['busy_wakeup_fraction']):.1%} buggy "  # type: ignore[arg-type]
        f"vs {float(f3_fix['busy_wakeup_fraction']):.1%} fixed"  # type: ignore[arg-type]
    )
    out.append("```\n")

    f5_bug, f5_fix = (o.result.row for o in by_name["figure5"])
    out.append("## Figure 5\n```")
    out.append(
        f"balancing coverage by core {OBSERVER_CPU}: "
        f"{float(f5_bug['coverage']):.1%} buggy "  # type: ignore[arg-type]
        f"vs {float(f5_fix['coverage']):.1%} fixed"  # type: ignore[arg-type]
    )
    out.append("```\n")

    counters: Dict[str, int] = {}
    for outcome in run.outcomes:
        for key, value in outcome.result.stats.items():
            counters[key] = counters.get(key, 0) + value

    return ReportResult(
        markdown="\n".join(out),
        digests=run.digests(),
        stats=run.stats,
        counters=counters,
    )

"""Table 4: the bug summary, generated from the registry.

The paper's Table 4 lists each bug's name, description, affected kernel
versions, impacted applications and maximum measured impact.  We render it
from :mod:`repro.core.bugs` and optionally append this reproduction's own
measured maxima (from Tables 1-3's drivers at small scale).

:func:`run_table4_measured` produces that "measured here" column through
the orchestrator: one representative trial pair per bug -- make+2R for
Group Imbalance, NAS lu for Scheduling Group Construction and Missing
Scheduling Domains, TPC-H for Overload-on-Wakeup -- emitted as a single
flat spec list, so a ``--jobs 4`` run executes all four studies' trials
concurrently and still merges bit-identically to the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.bugs import BUGS
from repro.experiments.report import Table
from repro.perf.orchestrator import (
    OrchestratorRun,
    PoolStats,
    ResultCache,
    TrialSpec,
    run_trials,
)


def format_table4(
    measured_max: Optional[Dict[str, str]] = None,
) -> str:
    """Render Table 4, optionally with this reproduction's own maxima."""
    headers = ["name", "kernel version", "impacted applications",
               "paper max impact"]
    if measured_max is not None:
        headers.append("measured here")
    table = Table("Table 4: bugs found in the scheduler using our tools",
                  headers)
    for bug in BUGS:
        row = [bug.name, bug.kernel_versions, bug.impacted_applications,
               bug.paper_max_impact]
        if measured_max is not None:
            row.append(measured_max.get(bug.name, "-"))
        table.add_row(*row)
    return table.render()


@dataclass
class Table4Measured:
    """The measured-impact column plus its run's equivalence evidence."""

    #: Bug name -> this reproduction's measured maximum impact.
    measured: Dict[str, str]
    #: Schedule digest of every trial, in spec order (the -jN witness).
    digests: List[str]
    #: The orchestrated run's utilization statistics.
    stats: PoolStats


def table4_measured_specs(
    scale: float = 0.2, seed: int = 42
) -> List[TrialSpec]:
    """One representative trial pair per bug, as a single flat grid."""
    from repro.experiments.figure2 import figure2_specs
    from repro.experiments.figure3 import figure3_specs
    from repro.experiments.table1 import table1_specs
    from repro.experiments.table3 import table3_specs

    specs: List[TrialSpec] = []
    specs += figure2_specs(
        scale=min(scale * 2, 1.0), seed=seed, traced=False
    )
    specs += table1_specs(scale=scale, apps=["lu"], seed=seed)
    specs += figure3_specs(scale=1.0, seed=seed, queries=4, artifact=False)
    specs += table3_specs(scale=scale, apps=["lu"], seed=seed)
    return specs


def run_table4_measured(
    scale: float = 0.2,
    seed: int = 42,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Table4Measured:
    """Measure every bug's representative impact via the orchestrator."""
    specs = table4_measured_specs(scale=scale, seed=seed)
    run: OrchestratorRun = run_trials(specs, jobs=jobs, cache=cache)
    rows = run.rows()
    measured: Dict[str, str] = {}

    # Group Imbalance: make+2R completion improvement (buggy, fixed).
    make_bug = float(rows[0]["make_seconds"])  # type: ignore[arg-type]
    make_fix = float(rows[1]["make_seconds"])  # type: ignore[arg-type]
    improvement = (make_fix - make_bug) / make_bug * 100.0
    measured["Group Imbalance"] = f"{-improvement:.0f}% (make)"

    # Scheduling Group Construction: the worst NAS factor (lu).
    t1_bug = float(rows[2]["seconds"])  # type: ignore[arg-type]
    t1_fix = float(rows[3]["seconds"])  # type: ignore[arg-type]
    measured["Scheduling Group Construction"] = (
        f"{t1_bug / t1_fix:.0f}x (lu)"
    )

    # Overload-on-Wakeup: TPC-H completion delta (buggy, fixed spans).
    span_bug = float(rows[4]["span_us"])  # type: ignore[arg-type]
    span_fix = float(rows[5]["span_us"])  # type: ignore[arg-type]
    delta = (span_bug - span_fix) / span_bug * 100.0
    measured["Overload-on-Wakeup"] = f"{delta:.0f}% (TPC-H)"

    # Missing Scheduling Domains: the worst NAS factor (lu).
    t3_bug = float(rows[6]["seconds"])  # type: ignore[arg-type]
    t3_fix = float(rows[7]["seconds"])  # type: ignore[arg-type]
    measured["Missing Scheduling Domains"] = f"{t3_bug / t3_fix:.0f}x (lu)"

    return Table4Measured(
        measured=measured, digests=run.digests(), stats=run.stats
    )


def bug_descriptions() -> str:
    """One paragraph per bug (the table's description column, expanded)."""
    lines = []
    for bug in BUGS:
        lines.append(f"{bug.name} (section {bug.paper_section}, "
                     f"fix flag {bug.fix_flag}):")
        lines.append(f"  {bug.description}")
    return "\n".join(lines)

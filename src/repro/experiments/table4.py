"""Table 4: the bug summary, generated from the registry.

The paper's Table 4 lists each bug's name, description, affected kernel
versions, impacted applications and maximum measured impact.  We render it
from :mod:`repro.core.bugs` and optionally append this reproduction's own
measured maxima (from Tables 1-3's drivers at small scale).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.bugs import BUGS
from repro.experiments.report import Table


def format_table4(
    measured_max: Optional[Dict[str, str]] = None,
) -> str:
    """Render Table 4, optionally with this reproduction's own maxima."""
    headers = ["name", "kernel version", "impacted applications",
               "paper max impact"]
    if measured_max is not None:
        headers.append("measured here")
    table = Table("Table 4: bugs found in the scheduler using our tools",
                  headers)
    for bug in BUGS:
        row = [bug.name, bug.kernel_versions, bug.impacted_applications,
               bug.paper_max_impact]
        if measured_max is not None:
            row.append(measured_max.get(bug.name, "-"))
        table.add_row(*row)
    return table.render()


def bug_descriptions() -> str:
    """One paragraph per bug (the table's description column, expanded)."""
    lines = []
    for bug in BUGS:
        lines.append(f"{bug.name} (section {bug.paper_section}, "
                     f"fix flag {bug.fix_flag}):")
        lines.append(f"  {bug.description}")
    return "\n".join(lines)

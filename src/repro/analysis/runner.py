"""The ``repro lint`` entry point: walk, apply baseline, render, exit code.

Composes with pre-commit hooks and CI: exit status is 0 on a clean tree
(or when every finding is grandfathered by the baseline) and 1 when any
new finding exists.  ``--format json`` emits a stable machine-readable
document; ``--write-baseline`` records the current findings as the new
grandfather set.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.core import Analyzer, Finding
from repro.analysis.rules import default_rules

#: Default baseline filename, looked up in the current directory.
DEFAULT_BASELINE = "lint-baseline.json"

#: Schema version of the ``--format json`` document.
REPORT_VERSION = 1


def default_target() -> Path:
    """The installed ``repro`` package tree (lint's default subject)."""
    import repro

    return Path(repro.__file__).resolve().parent


def render_json(
    new: Sequence[Finding], suppressed: Sequence[Finding]
) -> str:
    report = {
        "version": REPORT_VERSION,
        "findings": [f.to_dict() for f in new],
        "suppressed": [f.to_dict() for f in suppressed],
        "counts": {"new": len(new), "suppressed": len(suppressed)},
    }
    return json.dumps(report, indent=2, sort_keys=True)


def render_text(
    new: Sequence[Finding], suppressed: Sequence[Finding]
) -> str:
    lines = [f.format() for f in new]
    if new:
        lines.append("")
    noun = "finding" if len(new) == 1 else "findings"
    summary = f"{len(new)} {noun}"
    if suppressed:
        summary += f" ({len(suppressed)} suppressed by baseline)"
    lines.append(summary)
    return "\n".join(lines)


def run_lint(
    paths: Optional[Sequence[str]] = None,
    fmt: str = "text",
    baseline_path: Optional[str] = None,
    write_baseline: bool = False,
    out: Callable[[str], None] = print,
) -> int:
    """Run the offline checker; returns the process exit code.

    ``paths`` defaults to the installed ``repro`` package.  A baseline is
    consulted when ``baseline_path`` is given, or when the default
    ``lint-baseline.json`` exists in the working directory.
    """
    targets = (
        [Path(p) for p in paths] if paths else [default_target()]
    )
    missing = [t for t in targets if not t.exists()]
    if missing:
        out(f"error: no such path: {', '.join(str(m) for m in missing)}")
        return 2

    analyzer = Analyzer(default_rules())
    findings = analyzer.run(targets)

    explicit = baseline_path is not None
    resolved_baseline = Path(baseline_path or DEFAULT_BASELINE)
    if write_baseline:
        Baseline.from_findings(findings).save(resolved_baseline)
        noun = "finding" if len(findings) == 1 else "findings"
        out(
            f"baseline written to {resolved_baseline} "
            f"({len(findings)} {noun} grandfathered)"
        )
        return 0

    new: List[Finding] = findings
    suppressed: List[Finding] = []
    if explicit or resolved_baseline.exists():
        try:
            baseline = Baseline.load(resolved_baseline)
        except BaselineError as exc:
            out(f"error: {exc}")
            return 2
        new, suppressed = baseline.split(findings)

    if fmt == "json":
        out(render_json(new, suppressed))
    else:
        out(render_text(new, suppressed))
    return 1 if new else 0

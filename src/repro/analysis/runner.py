"""The ``repro lint`` entry point: walk, apply suppressions, render, exit.

Composes with pre-commit hooks and CI: exit status is 0 on a clean tree
(or when every finding is excused -- grandfathered by the baseline or
silenced by an inline ``# repro: noqa[...]`` directive) and 1 when any
new finding exists.  ``--format json`` emits a stable machine-readable
document, ``--format sarif`` (or ``--sarif FILE``) a SARIF 2.1.0 log for
code-scanning consumers, and ``--write-baseline`` records the current
active findings as the new grandfather set.
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.perf.orchestrator.spec import TrialResult, TrialSpec

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.core import Analyzer, Finding, iter_python_files
from repro.analysis.rules import (
    HotPathCostRule,
    PureHotPathRule,
    default_rules,
    split_rules,
)
from repro.analysis.sarif import render_sarif

#: Default baseline filename, looked up in the current directory.
DEFAULT_BASELINE = "lint-baseline.json"

#: Schema version of the ``--format json`` document.  Version 2 split the
#: old two-way new/suppressed partition into three sections: ``findings``
#: (fail the run), ``baseline`` (grandfathered), ``noqa`` (inline).
REPORT_VERSION = 2


def default_target() -> Path:
    """The installed ``repro`` package tree (lint's default subject)."""
    import repro

    return Path(repro.__file__).resolve().parent


def partition_noqa(
    findings: Sequence[Finding],
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (active, inline-suppressed)."""
    active = [f for f in findings if not f.suppressed]
    noqa = [f for f in findings if f.suppressed]
    return active, noqa


def render_json(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    noqa: Sequence[Finding],
) -> str:
    report = {
        "version": REPORT_VERSION,
        "findings": [f.to_dict() for f in new],
        "baseline": [f.to_dict() for f in baselined],
        "noqa": [f.to_dict() for f in noqa],
        "counts": {
            "new": len(new),
            "baseline": len(baselined),
            "noqa": len(noqa),
        },
    }
    return json.dumps(report, indent=2, sort_keys=True)


def render_text(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    noqa: Sequence[Finding],
) -> str:
    lines = [f.format() for f in new]
    if new:
        lines.append("")
    noun = "finding" if len(new) == 1 else "findings"
    summary = f"{len(new)} {noun}"
    extras = []
    if baselined:
        extras.append(f"{len(baselined)} suppressed by baseline")
    if noqa:
        extras.append(f"{len(noqa)} suppressed inline")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def _finding_from_dict(data: Dict[str, object]) -> Finding:
    """Rebuild a :class:`Finding` from its :meth:`Finding.to_dict` form."""
    return Finding(
        rule_id=str(data["rule"]),
        path=str(data["path"]),
        line=int(data["line"]),  # type: ignore[call-overload]
        col=int(data["col"]),  # type: ignore[call-overload]
        message=str(data["message"]),
        snippet=str(data.get("snippet", "")),
        severity=str(data.get("severity", "warning")),
        suppressed=bool(data.get("suppressed", False)),
    )


def lint_shard_trial(spec: TrialSpec) -> TrialResult:
    """Pool worker: run every per-file rule over one shard of files.

    The spec's ``files`` param is a JSON list of absolute paths.  Only
    per-file rules run here -- cross-file rules need the whole tree and
    stay in the parent -- so a shard's findings depend on nothing but its
    own files, which is what makes any shard partition merge-equivalent
    to the serial walk.  Results opt out of the cache (``cache=False``):
    lint output depends on file *content*, which the spec fingerprint
    does not capture.
    """
    from repro.perf.orchestrator.spec import TrialResult

    files = json.loads(spec.param("files") or "[]")
    per_file, _ = split_rules(default_rules())
    analyzer = Analyzer(per_file)
    findings = analyzer.run([Path(f) for f in files])
    payload = [f.to_dict() for f in findings]
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return TrialResult(
        row={"findings": payload, "files": len(files)},
        schedule_digest=digest,
    )


def _parallel_findings(
    targets: Sequence[Path], jobs: int
) -> Tuple[
    List[Finding],
    Optional[Dict[str, object]],
    Optional[Dict[str, object]],
]:
    """The ``--jobs N`` walk: shard per-file rules, keep cross-file local.

    Workers each run the per-file rules over a round-robin shard of the
    file list; the parent runs the cross-file rules (whole-program state)
    over every file itself.  The merged, sorted result is byte-identical
    to the serial walk: per-file findings keep their within-file emission
    order (one file lives in exactly one shard), cross-file finalize
    findings sort after visit findings on ties exactly as the serial
    accumulator ordered them, and the parent's duplicate parse-error
    findings are dropped in favor of the workers' copies.

    Returns ``(findings, vectorization_report, cost_report)``.
    """
    from repro.perf.orchestrator.pool import run_pool
    from repro.perf.orchestrator.spec import TrialSpec

    files = list(iter_python_files(targets))
    shards: List[List[Path]] = [[] for _ in range(min(jobs, len(files)) or 1)]
    for index, path in enumerate(files):
        shards[index % len(shards)].append(path)
    shards = [s for s in shards if s]

    start = time.perf_counter()
    specs = [
        (
            index,
            TrialSpec(
                kind="repro.analysis.runner:lint_shard_trial",
                scenario=f"lint-shard-{index}",
                seed=0,
                params=(
                    ("files", json.dumps([str(p) for p in shard])),
                ),
                cache=False,
            ),
        )
        for index, shard in enumerate(shards)
    ]
    done = 0

    def _progress(record: object) -> None:
        nonlocal done
        done += 1
        print(
            f"lint: shard {done}/{len(specs)} done",
            file=sys.stderr,
            flush=True,
        )

    executed = run_pool(specs, jobs=jobs, on_result=_progress)
    findings: List[Finding] = []
    for record in executed:
        for data in record.result.row["findings"]:  # type: ignore[index]
            findings.append(_finding_from_dict(data))

    _, cross = split_rules(default_rules())
    analyzer = Analyzer(cross)
    for finding in analyzer.run(files):
        if finding.rule_id == "parse-error":
            continue  # the owning shard already reported it
        findings.append(finding)
    report = _take_effects_report(cross)
    cost = _take_cost_report(cross)
    findings.sort(key=Finding.sort_key)
    elapsed = time.perf_counter() - start
    print(
        f"lint: {len(files)} files in {len(specs)} shards "
        f"across {jobs} workers in {elapsed:.2f}s",
        file=sys.stderr,
        flush=True,
    )
    return findings, report, cost


def _take_effects_report(
    rules: Sequence[object],
) -> Optional[Dict[str, object]]:
    """The vectorization-safety report stashed by the purity rule."""
    for rule in rules:
        if isinstance(rule, PureHotPathRule) and rule.report is not None:
            return rule.report
    return None


def _take_cost_report(
    rules: Sequence[object],
) -> Optional[Dict[str, object]]:
    """The cost/allocation report stashed by the hot-path cost rule."""
    for rule in rules:
        if isinstance(rule, HotPathCostRule) and rule.report is not None:
            return rule.report
    return None


def run_lint(
    paths: Optional[Sequence[str]] = None,
    fmt: str = "text",
    baseline_path: Optional[str] = None,
    write_baseline: bool = False,
    sarif_path: Optional[str] = None,
    jobs: Optional[int] = None,
    effects_report: Optional[str] = None,
    cost_report: Optional[str] = None,
    write_cost_baseline: bool = False,
    profile_weights_path: Optional[str] = None,
    out: Callable[[str], None] = print,
) -> int:
    """Run the offline checker; returns the process exit code.

    ``paths`` defaults to the installed ``repro`` package.  A baseline is
    consulted when ``baseline_path`` is given, or when the default
    ``lint-baseline.json`` exists in the working directory.  When
    ``sarif_path`` is given a SARIF 2.1.0 log of *every* finding
    (including suppressed ones, flagged as such) is also written there.
    ``jobs`` > 1 shards the per-file rules across a worker pool (stdout
    stays byte-identical; progress goes to stderr); ``effects_report``
    names a file to receive the vectorization-safety JSON computed by
    the ``pure-hot-path`` rule, ``cost_report`` one for the cost and
    allocation analysis computed by the ``hot-path-alloc`` rule.
    ``write_cost_baseline`` rewrites ``COST_baseline.json`` from the
    fresh analysis (profile weights are carried over) -- the cost
    analogue of ``write_baseline``; ``profile_weights_path`` names a
    harvested ``repro bench --profile`` weights file to commit in place
    of the carried-over weights.
    """
    targets = (
        [Path(p) for p in paths] if paths else [default_target()]
    )
    missing = [t for t in targets if not t.exists()]
    if missing:
        out(f"error: no such path: {', '.join(str(m) for m in missing)}")
        return 2

    from repro.perf.orchestrator.pool import resolve_jobs

    try:
        workers = resolve_jobs(jobs)
    except ValueError as exc:
        out(f"error: {exc}")
        return 2

    rules = default_rules()
    if workers > 1:
        findings, report, cost = _parallel_findings(targets, workers)
    else:
        analyzer = Analyzer(rules)
        findings = analyzer.run(targets)
        report = _take_effects_report(rules)
        cost = _take_cost_report(rules)

    if effects_report is not None:
        if report is None:
            out(
                "error: no vectorization-safety report produced "
                "(no repro.sched/sim/core files in the analyzed set)"
            )
            return 2
        Path(effects_report).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    if cost_report is not None:
        if cost is None:
            out(
                "error: no cost report produced "
                "(no repro.sched/sim/core files in the analyzed set)"
            )
            return 2
        Path(cost_report).write_text(
            json.dumps(cost, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    if write_cost_baseline:
        if cost is None:
            out(
                "error: no cost report produced "
                "(no repro.sched/sim/core files in the analyzed set)"
            )
            return 2
        from repro.analysis.rules.cost import (
            DEFAULT_COST_BASELINE,
            build_cost_baseline,
            load_cost_baseline,
        )

        weights = None
        if profile_weights_path is not None:
            try:
                raw = json.loads(Path(profile_weights_path).read_text())
            except (OSError, ValueError) as exc:
                out(f"error: cannot read profile weights "
                    f"{profile_weights_path}: {exc}")
                return 2
            if not isinstance(raw, dict):
                out(f"error: {profile_weights_path}: not a "
                    "qualname->seconds map")
                return 2
            weights = {str(k): float(v) for k, v in raw.items()}

        target = Path(DEFAULT_COST_BASELINE)
        previous = load_cost_baseline(str(target))
        document = build_cost_baseline(cost, previous=previous,
                                       weights=weights)
        target.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        out(f"cost baseline written to {target}")

    active, noqa = partition_noqa(findings)

    explicit = baseline_path is not None
    resolved_baseline = Path(baseline_path or DEFAULT_BASELINE)
    if write_baseline:
        # Only active findings need grandfathering; a noqa'd finding is
        # already excused at its source line.
        Baseline.from_findings(active).save(resolved_baseline)
        noun = "finding" if len(active) == 1 else "findings"
        out(
            f"baseline written to {resolved_baseline} "
            f"({len(active)} {noun} grandfathered)"
        )
        return 0

    new: List[Finding] = active
    baselined: List[Finding] = []
    if explicit or resolved_baseline.exists():
        try:
            baseline = Baseline.load(resolved_baseline)
        except BaselineError as exc:
            out(f"error: {exc}")
            return 2
        new, baselined = baseline.split(active)

    baseline_fps = {f.fingerprint() for f in baselined}
    if sarif_path is not None:
        Path(sarif_path).write_text(
            render_sarif(findings, rules, baseline_fps) + "\n",
            encoding="utf-8",
        )

    if fmt == "json":
        out(render_json(new, baselined, noqa))
    elif fmt == "sarif":
        out(render_sarif(findings, rules, baseline_fps))
    else:
        out(render_text(new, baselined, noqa))
    return 1 if new else 0

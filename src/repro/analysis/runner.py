"""The ``repro lint`` entry point: walk, apply suppressions, render, exit.

Composes with pre-commit hooks and CI: exit status is 0 on a clean tree
(or when every finding is excused -- grandfathered by the baseline or
silenced by an inline ``# repro: noqa[...]`` directive) and 1 when any
new finding exists.  ``--format json`` emits a stable machine-readable
document, ``--format sarif`` (or ``--sarif FILE``) a SARIF 2.1.0 log for
code-scanning consumers, and ``--write-baseline`` records the current
active findings as the new grandfather set.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.core import Analyzer, Finding
from repro.analysis.rules import default_rules
from repro.analysis.sarif import render_sarif

#: Default baseline filename, looked up in the current directory.
DEFAULT_BASELINE = "lint-baseline.json"

#: Schema version of the ``--format json`` document.  Version 2 split the
#: old two-way new/suppressed partition into three sections: ``findings``
#: (fail the run), ``baseline`` (grandfathered), ``noqa`` (inline).
REPORT_VERSION = 2


def default_target() -> Path:
    """The installed ``repro`` package tree (lint's default subject)."""
    import repro

    return Path(repro.__file__).resolve().parent


def partition_noqa(
    findings: Sequence[Finding],
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (active, inline-suppressed)."""
    active = [f for f in findings if not f.suppressed]
    noqa = [f for f in findings if f.suppressed]
    return active, noqa


def render_json(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    noqa: Sequence[Finding],
) -> str:
    report = {
        "version": REPORT_VERSION,
        "findings": [f.to_dict() for f in new],
        "baseline": [f.to_dict() for f in baselined],
        "noqa": [f.to_dict() for f in noqa],
        "counts": {
            "new": len(new),
            "baseline": len(baselined),
            "noqa": len(noqa),
        },
    }
    return json.dumps(report, indent=2, sort_keys=True)


def render_text(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    noqa: Sequence[Finding],
) -> str:
    lines = [f.format() for f in new]
    if new:
        lines.append("")
    noun = "finding" if len(new) == 1 else "findings"
    summary = f"{len(new)} {noun}"
    extras = []
    if baselined:
        extras.append(f"{len(baselined)} suppressed by baseline")
    if noqa:
        extras.append(f"{len(noqa)} suppressed inline")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def run_lint(
    paths: Optional[Sequence[str]] = None,
    fmt: str = "text",
    baseline_path: Optional[str] = None,
    write_baseline: bool = False,
    sarif_path: Optional[str] = None,
    out: Callable[[str], None] = print,
) -> int:
    """Run the offline checker; returns the process exit code.

    ``paths`` defaults to the installed ``repro`` package.  A baseline is
    consulted when ``baseline_path`` is given, or when the default
    ``lint-baseline.json`` exists in the working directory.  When
    ``sarif_path`` is given a SARIF 2.1.0 log of *every* finding
    (including suppressed ones, flagged as such) is also written there.
    """
    targets = (
        [Path(p) for p in paths] if paths else [default_target()]
    )
    missing = [t for t in targets if not t.exists()]
    if missing:
        out(f"error: no such path: {', '.join(str(m) for m in missing)}")
        return 2

    rules = default_rules()
    analyzer = Analyzer(rules)
    findings = analyzer.run(targets)
    active, noqa = partition_noqa(findings)

    explicit = baseline_path is not None
    resolved_baseline = Path(baseline_path or DEFAULT_BASELINE)
    if write_baseline:
        # Only active findings need grandfathering; a noqa'd finding is
        # already excused at its source line.
        Baseline.from_findings(active).save(resolved_baseline)
        noun = "finding" if len(active) == 1 else "findings"
        out(
            f"baseline written to {resolved_baseline} "
            f"({len(active)} {noun} grandfathered)"
        )
        return 0

    new: List[Finding] = active
    baselined: List[Finding] = []
    if explicit or resolved_baseline.exists():
        try:
            baseline = Baseline.load(resolved_baseline)
        except BaselineError as exc:
            out(f"error: {exc}")
            return 2
        new, baselined = baseline.split(active)

    baseline_fps = {f.fingerprint() for f in baselined}
    if sarif_path is not None:
        Path(sarif_path).write_text(
            render_sarif(findings, rules, baseline_fps) + "\n",
            encoding="utf-8",
        )

    if fmt == "json":
        out(render_json(new, baselined, noqa))
    elif fmt == "sarif":
        out(render_sarif(findings, rules, baseline_fps))
    else:
        out(render_text(new, baselined, noqa))
    return 1 if new else 0

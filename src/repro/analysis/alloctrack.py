"""Runtime allocation tracker: declared alloc classes vs observed churn.

The static half (:mod:`repro.analysis.costmodel` + the
``hot-path-alloc`` rule) certifies each hot root's allocation class from
syntax.  Like PR 4's coherence sanitizer and PR 7's effect checker, the
certification is only as good as the analysis -- an allocation the AST
scan cannot see (a C-level temporary, an unresolved helper) would
silently hollow out an ``alloc-free`` claim.  This module is the dynamic
cross-check, used by ``repro demo <bug> --alloc-check`` and the CI soak.

Mechanics
---------

An :class:`AllocCheckSession`

* resolves the :data:`~repro.analysis.effects.HOT_ROOTS` over the
  installed tree (the same :class:`~repro.analysis.effects.EffectEngine`
  the lint rules build) and indexes each root function by
  ``(resolved filename, first line)`` -- def line and decorator lines,
  matching every placement of ``co_firstlineno``;
* installs a ``sys.setprofile`` hook and ``tracemalloc`` (1 frame of
  traceback: we attribute by *window*, not by stack) and opens a
  measurement window for each root frame on entry;
* accounts **exclusively**: when one monitored root calls another, the
  outer window's high-water mark so far is folded into an accumulator,
  the peak counter is reset for the inner window, and on inner return
  the outer baseline is rebased by the inner window's *retained* bytes
  -- so churn is billed to exactly one root;
* counts an **allocation event** against a window when its exclusive
  high-water delta reaches :data:`EVENT_THRESHOLD_BYTES`.  The 96-byte
  floor deliberately ignores what the static model also exempts:
  freelist-served boxed numbers, small result tuples, and the ~48-byte
  tuple iterators every ``for`` loop over a cached tuple creates.

Verdicts
--------

Only the ``alloc-free`` tier is *enforced*: a single event in any window
of a root declared ``alloc-free`` is an :class:`AllocDivergence`.  For
``amortized`` roots the per-call event rate is reported but not gated --
hit rates are workload-dependent by design (under the vectorized mirror,
``RunQueue.load`` is only ever *invoked* on staleness, so every observed
call allocates even though the steady state is hit-dominated), so a
rate-based gate would encode the workload, not the code.  The static
rule gates those tiers instead.

The profile hook allocates a little itself (the traced-memory tuple,
stack mutation).  Both window transitions therefore end with
``tracemalloc.reset_peak()`` as their *last* action, so hook-side churn
never lands inside a measured window.

Self-noise calibration
----------------------

One hook-side cost cannot be reset away: every *nested* call inside an
open window re-enters the Python profile hook, which materializes the
hook's and the callee's frame objects before any line of the hook runs.
A perfectly alloc-free root that makes one nested call therefore reads
~320-380 peak bytes -- above any useful threshold.  Because the window
metric is a high-water mark and those frames are freed as each nested
call returns, the noise *saturates* with call depth rather than growing
with call count.  ``install()`` therefore calibrates a per-window
**noise floor**: a known alloc-free probe (tuple iteration plus nested
calls -- the same shape as a real alloc-free hot root) is driven
through the real windowed hook path and the worst observed window is
subtracted from every subsequent window before thresholding (floored
at zero).  Deeper call chains than the probe's can carry residual
noise, but alloc-free roots are shallow by construction -- and the
deeper, busier roots belong to tiers where event rates are reported,
not gated.
"""

from __future__ import annotations

import sys
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from types import FrameType
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.effects import HOT_ROOTS, EffectEngine, root_function

#: Exclusive high-water delta (bytes) below which a window's churn is
#: ignored: freelist boxes, small tuples, and tuple iterators live here.
EVENT_THRESHOLD_BYTES = 96


class AllocDivergence(RuntimeError):
    """A declared alloc-free hot root allocated at runtime."""


_CALIB_TUPLE = (1, 2, 3, 4)


def _calib_nested(x: int) -> int:
    return x + 1


def _calib_root() -> int:
    # Alloc-free by construction: module-level callees (no closure
    # objects), small-int arithmetic, iteration over a cached tuple --
    # the same shape as a real alloc-free hot root.  Every byte the
    # tracer bills to this function's window is hook self-noise.
    total = 0
    for v in _CALIB_TUPLE:
        total = _calib_nested(total + v)
    return total


@dataclass
class RootStats:
    """Observed allocation behavior of one hot root."""

    label: str
    declared: str
    calls: int = 0
    #: Windows whose exclusive high-water delta reached the threshold.
    events: int = 0
    max_bytes: int = 0
    #: bytes high-water of the worst window, summed across all windows.
    total_bytes: int = 0
    lines: List[int] = field(default_factory=list)

    @property
    def event_rate(self) -> float:
        return self.events / self.calls if self.calls else 0.0


class AllocCheckSession:
    """Track allocations inside hot-root frames; gate alloc-free roots.

    Use as a context manager around the code to soak::

        session = AllocCheckSession()
        with session:
            scenario.run()
        print(session.summary())
        session.check()   # raises AllocDivergence on any divergence
    """

    def __init__(
        self,
        engine: Optional[EffectEngine] = None,
        declared: Optional[Dict[str, str]] = None,
        threshold: int = EVENT_THRESHOLD_BYTES,
    ) -> None:
        from repro.analysis.effectcheck import installed_files
        from repro.sched.allocdecl import DECLARED_ALLOC

        self.engine = engine if engine is not None else EffectEngine(
            installed_files()
        )
        self.declared: Dict[str, str] = (
            dict(declared) if declared is not None else dict(DECLARED_ALLOC)
        )
        self.threshold = threshold
        self.stats: Dict[str, RootStats] = {}
        #: ``(resolved filename, first line)`` -> root label.
        self._index: Dict[Tuple[str, int], str] = {}
        for label in sorted(HOT_ROOTS):
            cls, name = HOT_ROOTS[label]
            fn = root_function(self.engine, cls, name)
            if fn is None:
                continue
            node = fn.node
            path = str(Path(fn.display_path).resolve())
            lines = [getattr(node, "lineno", 0)]
            for deco in getattr(node, "decorator_list", ()):
                lines.append(deco.lineno)
            for lineno in lines:
                self._index[(path, lineno)] = label
            self.stats[label] = RootStats(
                label=label,
                declared=self.declared.get(label, "allocating"),
            )
        #: code object -> label (or "" for not-a-root), identity-cached
        #: so the steady-state hook path is one dict hit.
        self._code_cache: Dict[Any, str] = {}
        #: Open windows: [frame, label, base_current, accumulated_peak].
        self._stack: List[List[Any]] = []
        self._prev_profile: Optional[Callable[..., Any]] = None
        self._started_tracemalloc = False
        self._installed = False
        #: Calibrated per-window hook self-noise (bytes), set by
        #: :meth:`install`; zero until calibrated.
        self.noise_floor = 0
        #: Raw window deltas collected only during calibration;
        #: ``None`` in the steady state.
        self._calib_samples: Optional[List[int]] = None

    # -- the profile hook --------------------------------------------------

    def _label_of(self, code: Any) -> str:
        label = self._code_cache.get(code)
        if label is None:
            try:
                path = str(Path(code.co_filename).resolve())
            except OSError:
                path = code.co_filename
            label = self._index.get((path, code.co_firstlineno), "")
            self._code_cache[code] = label
        return label

    def _profile(self, frame: FrameType, event: str, arg: Any) -> None:
        if event == "call":
            label = self._label_of(frame.f_code)
            if not label:
                return
            current, peak = tracemalloc.get_traced_memory()
            stack = self._stack
            if stack:
                outer = stack[-1]
                delta = peak - outer[2]
                if delta > outer[3]:
                    outer[3] = delta
            stack.append([frame, label, current, 0])
            tracemalloc.reset_peak()
            return
        if event != "return":
            return
        stack = self._stack
        if not stack:
            return
        # The common case: the returning frame owns the top window.
        # Exception unwinds can skip intermediate returns; drop any
        # orphaned inner windows above the match unjudged.
        top = len(stack) - 1
        while top >= 0 and stack[top][0] is not frame:
            top -= 1
        if top < 0:
            return
        del stack[top + 1:]
        entry = stack.pop()
        current, peak = tracemalloc.get_traced_memory()
        base = entry[2]
        delta = peak - base
        if entry[3] > delta:
            delta = entry[3]
        # Bill the window only for what the *workload* allocated: the
        # hook + callee frames materialized by nested calls peaked
        # inside the window too, up to the calibrated floor.
        if self._calib_samples is not None and entry[1] == "__calib__":
            self._calib_samples.append(delta)
        delta -= self.noise_floor
        if delta < 0:
            delta = 0
        stats = self.stats[entry[1]]
        stats.calls += 1
        if delta >= self.threshold:
            stats.events += 1
            stats.total_bytes += delta
            if delta > stats.max_bytes:
                stats.max_bytes = delta
                stats.lines = [frame.f_lineno]
        if stack:
            # Bytes the inner window retained shift the outer baseline
            # up, so the outer root is not billed for them.
            retained = current - base
            if retained > 0:
                stack[-1][2] += retained
        tracemalloc.reset_peak()

    # -- lifecycle ---------------------------------------------------------

    def install(self) -> None:
        """Start tracemalloc and the profile hook (idempotent)."""
        if self._installed:
            return
        if not tracemalloc.is_tracing():
            tracemalloc.start(1)
            self._started_tracemalloc = True
        self._prev_profile = sys.getprofile()
        sys.setprofile(self._profile)
        self._installed = True
        self.noise_floor = self._calibrate()

    def _calibrate(self) -> int:
        """Measure the hook's own per-window allocation noise.

        End-to-end: the alloc-free probe is registered as a synthetic
        root, driven through the *real* windowed hook path, and the
        worst raw window becomes the floor.  Taking the max leans the
        right way: under-subtracting would leave residual self-noise
        that a 100% event rate on an alloc-free root would then
        misreport as a workload divergence, while over-subtracting only
        raises the (already deliberate) small-allocation blind spot.
        """
        code = _calib_root.__code__
        self._code_cache[code] = "__calib__"
        self.stats["__calib__"] = RootStats(
            label="__calib__", declared="allocating"
        )
        saved_floor = self.noise_floor
        self.noise_floor = 0
        self._calib_samples = []
        try:
            for _ in range(3):  # warm code caches, frames and freelists
                _calib_root()
            self._calib_samples.clear()
            for _ in range(9):
                _calib_root()
            samples = list(self._calib_samples)
        finally:
            self._calib_samples = None
            self.noise_floor = saved_floor
            del self.stats["__calib__"]
            self._code_cache[code] = ""
        return max(samples) if samples else 0

    def uninstall(self) -> None:
        """Restore the previous profile hook and tracemalloc state."""
        if not self._installed:
            return
        sys.setprofile(self._prev_profile)
        self._prev_profile = None
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False
        self._stack.clear()
        self._installed = False

    def __enter__(self) -> "AllocCheckSession":
        self.install()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()

    # -- verdicts ----------------------------------------------------------

    def divergences(self) -> List[str]:
        out: List[str] = []
        for label in sorted(self.stats):
            stats = self.stats[label]
            if stats.declared != "alloc-free" or stats.events == 0:
                continue
            at = (
                f" (last worst window returned at line {stats.lines[0]})"
                if stats.lines else ""
            )
            out.append(
                f"hot root [{label}] is declared alloc-free but "
                f"allocated in {stats.events}/{stats.calls} calls "
                f"(worst window {stats.max_bytes} bytes){at}"
            )
        return out

    def summary(self) -> str:
        observed = [s for s in self.stats.values() if s.calls]
        lines = [
            f"alloc-check: {len(self.stats)} hot roots indexed, "
            f"{len(observed)} observed, threshold "
            f"{self.threshold} bytes, hook noise floor "
            f"{self.noise_floor} bytes/window, "
            f"{len(self.divergences())} divergences"
        ]
        for label in sorted(self.stats):
            stats = self.stats[label]
            if not stats.calls:
                continue
            lines.append(
                f"  [{label}] declared {stats.declared}: "
                f"{stats.events}/{stats.calls} allocating calls "
                f"({stats.event_rate:.1%}), worst window "
                f"{stats.max_bytes} bytes"
            )
        return "\n".join(lines)

    def check(self) -> None:
        """Raise :class:`AllocDivergence` on any alloc-free breach."""
        problems = self.divergences()
        if not problems:
            return
        raise AllocDivergence(
            "declared allocation classes diverge from observed "
            "behavior:\n  " + "\n  ".join(problems)
        )

"""repro.analysis: the offline static invariant checker (``repro lint``).

The complement of the paper's online sanity checker (Algorithm 2): instead
of detecting invariant violations *after* they occur at runtime, this
package checks, before anything runs, the invariants the reproduction
depends on -- seed determinism, the ``sched``/``sim``/``obs`` layering
contract, tracepoint-registry consistency, and feature-flag discipline.

Public surface:

* :class:`~repro.analysis.core.Rule` -- the plugin interface;
* :class:`~repro.analysis.core.Analyzer` -- the single-pass file walker;
* :class:`~repro.analysis.core.Finding` -- one structured violation;
* :class:`~repro.analysis.baseline.Baseline` -- grandfathered violations;
* :func:`~repro.analysis.rules.default_rules` -- the shipped rule set;
* :func:`~repro.analysis.runner.run_lint` -- the CLI entry point;
* :func:`~repro.analysis.sarif.to_sarif` -- SARIF 2.1.0 export.

Whole-program facilities (built once per lint run, shared by rules that
need more than one file): :class:`~repro.analysis.symbols.SymbolTable`,
:class:`~repro.analysis.callgraph.CallGraph`, and the mutation/epoch
dataflow pass in :mod:`repro.analysis.dataflow` feeding
:mod:`repro.analysis.rules.coherence`.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.core import (
    Analyzer,
    FileContext,
    Finding,
    Rule,
    iter_python_files,
    module_for_path,
)
from repro.analysis.rules import default_rules
from repro.analysis.runner import run_lint
from repro.analysis.sarif import render_sarif, to_sarif

__all__ = [
    "Analyzer",
    "Baseline",
    "BaselineError",
    "FileContext",
    "Finding",
    "Rule",
    "default_rules",
    "iter_python_files",
    "module_for_path",
    "render_sarif",
    "run_lint",
    "to_sarif",
]

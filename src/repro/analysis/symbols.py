"""Project-wide symbol table with lightweight annotation-driven types.

The per-file rules in :mod:`repro.analysis.rules` see one AST at a time;
the coherence pass needs to know, across the whole ``src/repro`` tree,
*which class* an attribute write lands on (``cpu.rq.enqueue`` mutates a
``RunQueue`` even though the statement lives in ``scheduler.py``).  This
module builds that map: every class, its fields and their types, every
function/method, and a small type-inference engine good enough for the
codebase's own idioms.

The inference is deliberately shallow -- it is a *linter's* type engine,
not a type checker:

* parameter and return annotations are trusted (``Optional[X]`` unwraps
  to ``X``: the analyzer cares where attributes live, not nullability);
* a field's type comes from its ``self.x: T`` annotation, or from
  ``self.x = ClassName(...)`` / an annotated parameter on the right-hand
  side of its ``__init__`` assignment;
* locals are tracked flow-insensitively (last assignment wins), which is
  exactly enough to resolve the alias idiom ``rq = cpu.rq; rq.load(...)``;
* anything unresolvable is ``None`` and downstream passes must treat it
  conservatively.

Everything here is pure and deterministic: same trees in, same table out.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Typing/builtin container heads whose element type we track.  ``Dict``
#: maps to its *value* type (iteration idioms in this codebase go through
#: ``.values()``).
_CONTAINERS = {
    "List": "elem", "Sequence": "elem", "Set": "elem", "FrozenSet": "elem",
    "Tuple": "elem", "Iterator": "elem", "Iterable": "elem", "Deque": "elem",
    "Dict": "value", "Mapping": "value", "DefaultDict": "value",
    "list": "elem", "set": "elem", "frozenset": "elem", "tuple": "elem",
    "dict": "value",
}

#: Methods of builtin containers that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend", "insert",
    "pop", "popitem", "popleft", "remove", "setdefault", "sort", "update",
})


@dataclass(frozen=True)
class TypeRef:
    """A resolved type: a bare class/builtin name plus one element slot.

    ``List[Task]`` becomes ``TypeRef("List", TypeRef("Task"))``; subscripting
    or iterating it yields the element.  Class names are *bare* (``RunQueue``)
    -- the table resolves them to definitions, tolerating the single-project
    assumption that bare class names are unique.
    """

    name: str
    elem: Optional["TypeRef"] = None


@dataclass
class FunctionInfo:
    """One function or method definition."""

    name: str
    #: ``module.Class.method`` or ``module.function`` (nested defs get
    #: ``module.outer.inner``).
    qualname: str
    module: str
    display_path: str
    node: ast.AST
    #: Bare name of the enclosing class, None for module-level functions.
    cls: Optional[str] = None

    @property
    def is_init(self) -> bool:
        return self.name == "__init__"


@dataclass
class ClassInfo:
    """One class definition with its fields and methods."""

    name: str
    qualname: str
    module: str
    display_path: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Field name -> inferred type (annotation-first, ctor-call fallback).
    field_types: Dict[str, Optional[TypeRef]] = field(default_factory=dict)


def type_from_annotation(node: Optional[ast.AST]) -> Optional[TypeRef]:
    """Parse an annotation AST into a :class:`TypeRef` (best effort).

    ``Optional[X]``/``Union[X, None]`` unwrap to ``X``; string annotations
    (forward references) are re-parsed; unsupported shapes yield None.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
        return type_from_annotation(node)
    if isinstance(node, ast.Name):
        return TypeRef(node.id)
    if isinstance(node, ast.Attribute):
        # ``typing.Optional`` style: keep only the final component.
        return TypeRef(node.attr)
    if isinstance(node, ast.Subscript):
        head = type_from_annotation(node.value)
        if head is None:
            return None
        args: List[ast.AST] = (
            list(node.slice.elts)
            if isinstance(node.slice, ast.Tuple)
            else [node.slice]
        )
        if head.name in ("Optional", "Union"):
            for arg in args:
                if isinstance(arg, ast.Constant) and arg.value is None:
                    continue
                inner = type_from_annotation(arg)
                if inner is not None:
                    return inner
            return None
        slot = _CONTAINERS.get(head.name)
        if slot is None:
            return TypeRef(head.name)
        if slot == "value" and len(args) >= 2:
            return TypeRef(head.name, type_from_annotation(args[1]))
        return TypeRef(head.name, type_from_annotation(args[0]))
    return None


def _qual(*parts: str) -> str:
    return ".".join(p for p in parts if p)


class SymbolTable:
    """Classes, functions, and field types of one analyzed file set."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassInfo] = {}
        #: Bare class name -> definitions (normally exactly one).
        self.by_name: Dict[str, List[ClassInfo]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: Bare ``module.function`` index for same-module call resolution.
        self._module_functions: Dict[Tuple[str, str], FunctionInfo] = {}
        self._env_cache: Dict[str, Dict[str, Optional[TypeRef]]] = {}
        self._mutating_cache: Dict[str, Set[str]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls, files: Sequence[Tuple[str, str, ast.Module]]
    ) -> "SymbolTable":
        """Build from ``(module, display_path, tree)`` triples: two passes
        -- declarations first, then field types (whose inference needs the
        full class index).
        """
        table = cls()
        for module, display, tree in files:
            table._collect(module, display, tree)
        for info in table.classes.values():
            table._infer_fields(info)
        return table

    def _collect(self, module: str, display: str, tree: ast.Module) -> None:
        def walk(nodes: Iterable[ast.stmt], prefix: str,
                 cls_name: Optional[str], cls_info: Optional[ClassInfo]
                 ) -> None:
            for node in nodes:
                if isinstance(node, ast.ClassDef):
                    qual = _qual(prefix, node.name)
                    info = ClassInfo(
                        name=node.name, qualname=qual, module=module,
                        display_path=display, node=node,
                        bases=[b.id for b in node.bases
                               if isinstance(b, ast.Name)],
                    )
                    self.classes[qual] = info
                    self.by_name.setdefault(node.name, []).append(info)
                    walk(node.body, qual, node.name, info)
                elif isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    qual = _qual(prefix, node.name)
                    fn = FunctionInfo(
                        name=node.name, qualname=qual, module=module,
                        display_path=display, node=node, cls=cls_name,
                    )
                    self.functions[qual] = fn
                    if cls_info is not None:
                        cls_info.methods.setdefault(node.name, fn)
                    elif prefix == module:
                        self._module_functions[(module, node.name)] = fn
                    # Nested defs are plain functions (no self binding).
                    walk(node.body, qual, None, None)

        walk(tree.body, module, None, None)

    def _infer_fields(self, info: ClassInfo) -> None:
        """Field types from class-level and ``self.x`` annotations, with a
        ctor-call / annotated-parameter fallback for plain assignments."""
        for stmt in info.node.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ):
                info.field_types[stmt.target.id] = type_from_annotation(
                    stmt.annotation
                )
        for method in info.methods.values():
            node = method.node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            env = self._param_env(node, info.name)
            for stmt in ast.walk(node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                ann: Optional[ast.expr] = None
                if isinstance(stmt, ast.AnnAssign):
                    target, value, ann = stmt.target, stmt.value, stmt.annotation
                elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                if (
                    target is None
                    or not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                name = target.attr
                if ann is not None:
                    info.field_types[name] = type_from_annotation(ann)
                elif name not in info.field_types:
                    info.field_types[name] = self.infer_expr(value, env)

    def _param_env(
        self, fn: ast.AST, cls_name: Optional[str]
    ) -> Dict[str, Optional[TypeRef]]:
        env: Dict[str, Optional[TypeRef]] = {}
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return env
        params = list(fn.args.posonlyargs) + list(fn.args.args) + list(
            fn.args.kwonlyargs
        )
        for arg in params:
            env[arg.arg] = type_from_annotation(arg.annotation)
        if cls_name is not None and params and params[0].arg in ("self", "cls"):
            env[params[0].arg] = TypeRef(cls_name)
        return env

    # -- lookups -----------------------------------------------------------

    def resolve_class(self, name: Optional[str]) -> Optional[ClassInfo]:
        """The unique class with this bare name, or None (missing or
        ambiguous -- ambiguity is treated as unresolvable, conservatively).
        """
        if name is None:
            return None
        matches = self.by_name.get(name, [])
        return matches[0] if len(matches) == 1 else None

    def field_type(self, cls_name: str, attr: str) -> Optional[TypeRef]:
        """A field's type, walking base classes by bare name."""
        seen: Set[str] = set()
        queue = [cls_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.resolve_class(current)
            if info is None:
                continue
            if attr in info.field_types:
                return info.field_types[attr]
            queue.extend(info.bases)
        return None

    def method(self, cls_name: str, attr: str) -> Optional[FunctionInfo]:
        """A method (or property function) by name, walking bases."""
        seen: Set[str] = set()
        queue = [cls_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.resolve_class(current)
            if info is None:
                continue
            if attr in info.methods:
                return info.methods[attr]
            queue.extend(info.bases)
        return None

    def module_function(
        self, module: str, name: str
    ) -> Optional[FunctionInfo]:
        return self._module_functions.get((module, name))

    def return_type(self, fn: FunctionInfo) -> Optional[TypeRef]:
        node = fn.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return type_from_annotation(node.returns)
        return None

    # -- local type environments -------------------------------------------

    def env_of(self, fn: FunctionInfo) -> Dict[str, Optional[TypeRef]]:
        """Flow-insensitive local types for one function (memoized).

        Parameters seed the map; then every ``name = expr`` /
        ``name: T = expr``, ``for name in iterable`` and comprehension
        generator binds its target to the inferred type.  Conflicting
        re-bindings resolve to the *last* inference that produced a type
        -- good enough to chase the read-only aliases the rules care about.
        """
        cached = self._env_cache.get(fn.qualname)
        if cached is not None:
            return cached
        env = self._param_env(fn.node, fn.cls)
        node = fn.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    tgt = stmt.targets[0]
                    if isinstance(tgt, ast.Name):
                        inferred = self.infer_expr(stmt.value, env)
                        if inferred is not None or tgt.id not in env:
                            env[tgt.id] = inferred
                elif isinstance(stmt, ast.AnnAssign):
                    if isinstance(stmt.target, ast.Name):
                        env[stmt.target.id] = type_from_annotation(
                            stmt.annotation
                        )
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    if isinstance(stmt.target, ast.Name):
                        env[stmt.target.id] = self._elem_of(
                            self.infer_expr(stmt.iter, env)
                        )
                elif isinstance(stmt, (
                    ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp
                )):
                    for gen in stmt.generators:
                        if isinstance(gen.target, ast.Name):
                            env[gen.target.id] = self._elem_of(
                                self.infer_expr(gen.iter, env)
                            )
        self._env_cache[fn.qualname] = env
        return env

    @staticmethod
    def _elem_of(ref: Optional[TypeRef]) -> Optional[TypeRef]:
        if ref is None:
            return None
        if ref.name in _CONTAINERS:
            return ref.elem
        return None

    # -- expression inference ----------------------------------------------

    def infer_expr(
        self,
        expr: Optional[ast.AST],
        env: Dict[str, Optional[TypeRef]],
        _depth: int = 0,
    ) -> Optional[TypeRef]:
        """Best-effort type of an expression under a local environment."""
        if expr is None or _depth > 12:
            return None
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.infer_expr(expr.value, env, _depth + 1)
            if base is None:
                return None
            # A method/property access types as its return annotation --
            # that is what makes ``sched.cpu(c).rq.nr_running`` chase
            # through the property.
            prop = self.method(base.name, expr.attr)
            if prop is not None:
                return self.return_type(prop)
            return self.field_type(base.name, expr.attr)
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if self.resolve_class(func.id) is not None:
                    return TypeRef(func.id)
                if func.id in ("list", "set", "dict", "tuple", "frozenset"):
                    return TypeRef(func.id)
                # Same-module function call: use its return annotation.
                for fn in self._module_functions.values():
                    if fn.name == func.id:
                        return self.return_type(fn)
                return None
            if isinstance(func, ast.Attribute):
                base = self.infer_expr(func.value, env, _depth + 1)
                if base is None:
                    return None
                target = self.method(base.name, func.attr)
                if target is not None:
                    return self.return_type(target)
                return None
            return None
        if isinstance(expr, ast.Subscript):
            return self._elem_of(self.infer_expr(expr.value, env, _depth + 1))
        if isinstance(expr, ast.BoolOp):
            for operand in expr.values:
                inferred = self.infer_expr(operand, env, _depth + 1)
                if inferred is not None:
                    return inferred
            return None
        if isinstance(expr, ast.IfExp):
            return (
                self.infer_expr(expr.body, env, _depth + 1)
                or self.infer_expr(expr.orelse, env, _depth + 1)
            )
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            inner = dict(env)
            for gen in expr.generators:
                if isinstance(gen.target, ast.Name):
                    inner[gen.target.id] = self._elem_of(
                        self.infer_expr(gen.iter, inner, _depth + 1)
                    )
            return TypeRef("List", self.infer_expr(expr.elt, inner, _depth + 1))
        if isinstance(expr, ast.List):
            elem = (
                self.infer_expr(expr.elts[0], env, _depth + 1)
                if expr.elts else None
            )
            return TypeRef("List", elem)
        if isinstance(expr, ast.Await):
            return self.infer_expr(expr.value, env, _depth + 1)
        return None

    # -- mutation knowledge ------------------------------------------------

    def mutating_methods(self, cls_name: str) -> Set[str]:
        """Method names of ``cls_name`` that mutate ``self`` state.

        A method mutates when it (a) assigns/aug-assigns/subscript-stores
        through ``self.attr``, (b) calls a builtin mutator on a ``self``
        field, or (c) calls another mutating method of the same class
        (computed to a fixpoint).  Used to treat ``x.field.insert(...)``
        as a write to ``field`` when ``field`` holds a project class.
        """
        cached = self._mutating_cache.get(cls_name)
        if cached is not None:
            return cached
        info = self.resolve_class(cls_name)
        if info is None:
            self._mutating_cache[cls_name] = set()
            return set()
        direct: Set[str] = set()
        self_calls: Dict[str, Set[str]] = {}
        for name, method in info.methods.items():
            calls: Set[str] = set()
            writes = False
            for node in ast.walk(method.node):
                target: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    for tgt in node.targets:
                        if _is_self_attr_store(tgt):
                            writes = True
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    target = node.target
                    if _is_self_attr_store(target):
                        writes = True
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    recv = node.func.value
                    if (
                        isinstance(recv, ast.Attribute)
                        and isinstance(recv.value, ast.Name)
                        and recv.value.id == "self"
                        and node.func.attr in MUTATOR_METHODS
                    ):
                        writes = True
                    elif (
                        isinstance(recv, ast.Name) and recv.id == "self"
                    ):
                        calls.add(node.func.attr)
            if writes:
                direct.add(name)
            self_calls[name] = calls
        # Fixpoint over self-calls.
        changed = True
        while changed:
            changed = False
            for name, calls in self_calls.items():
                if name not in direct and calls & direct:
                    direct.add(name)
                    changed = True
        self._mutating_cache[cls_name] = direct
        return direct


def _is_self_attr_store(node: ast.AST) -> bool:
    """``self.attr`` or ``self.attr[...]`` as an assignment target."""
    if isinstance(node, ast.Subscript):
        node = node.value
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )

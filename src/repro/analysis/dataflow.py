"""Mutation/bump summaries and interprocedural bump coverage.

The memoization contract of the fast-path layer (PR 3) is a *pairing*
discipline: every statement that changes a cached-load input must be
followed, on every path that can reach a cached read, by a bump of the
matching dirty counter.  This module extracts the facts that discipline
is stated over:

* :class:`FunctionSummary` -- per function: the fields it writes (plain
  assignments, augmented assignments, subscript stores, and *mutating
  calls* like ``self._tree.insert(...)``, which mutate the object held by
  a field), the fields it reads, and the counter bumps it performs
  (``<counter>.bump()`` calls and ``mutations += 1``).
* :class:`CoverageAnalysis` -- the query "is this write followed by a
  bump of counter C?", answered interprocedurally: a bump later in the
  same function (source order; conditional bumps count -- the contract's
  own bumps are conditional on idle transitions) covers it, otherwise
  *every* resolved caller must bump after its call site, recursively.
  A write with no known callers is uncovered (dead or dynamically
  reached code must opt out explicitly via ``noqa``), and a recursive
  cycle is treated as covered on that path (the non-cyclic entry edges
  still have to pass).

Counter names are normalized by stripping leading underscores, so the
``CGroupManager._load_epoch`` binding and the scheduler's ``load_epoch``
count as the same counter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.symbols import (
    MUTATOR_METHODS,
    FunctionInfo,
    SymbolTable,
    TypeRef,
)

#: The dirty counters of the fast-path contract.
COUNTER_NAMES = frozenset({
    "mutations", "load_epoch", "idle_epoch", "divisor_epoch",
})


def normalize_counter(name: str) -> str:
    return name.lstrip("_")


@dataclass(frozen=True)
class FieldAccess:
    """One attribute read or write, attributed to its owning class."""

    #: Bare class name owning the attribute; None when the receiver's
    #: type could not be inferred.
    cls: Optional[str]
    attr: str
    line: int
    #: ``assign`` | ``augassign`` | ``store-sub`` | ``mutate`` | ``read``.
    kind: str
    #: True when the receiver expression is ``self`` (used to exempt
    #: constructor initialization).
    via_self: bool = False


@dataclass
class FunctionSummary:
    """Field effects and counter bumps of one function."""

    fn: FunctionInfo
    writes: List[FieldAccess] = field(default_factory=list)
    reads: List[FieldAccess] = field(default_factory=list)
    #: (normalized counter name, line).
    bumps: List[Tuple[str, int]] = field(default_factory=list)


def build_summaries(
    table: SymbolTable,
) -> Dict[str, FunctionSummary]:
    """One :class:`FunctionSummary` per function in the table."""
    return {
        qual: _summarize(table, fn)
        for qual, fn in table.functions.items()
    }


def _summarize(table: SymbolTable, fn: FunctionInfo) -> FunctionSummary:
    summary = FunctionSummary(fn=fn)
    node = fn.node
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return summary
    env = table.env_of(fn)

    def owner_of(expr: ast.AST) -> Tuple[Optional[str], bool]:
        """(owning class bare name, receiver-is-self) of an attribute's
        receiver expression."""
        via_self = isinstance(expr, ast.Name) and expr.id == "self"
        inferred = table.infer_expr(expr, env)
        if inferred is None:
            return None, via_self
        if table.resolve_class(inferred.name) is None:
            # A builtin/typing head is a known *non-project* owner: report
            # it as unresolved-but-harmless (the rule only matches project
            # classes) rather than None (which the rule treats as "could
            # be anything" for distinctive fields).
            return f"<{inferred.name}>", via_self
        return inferred.name, via_self

    def record_write(target: ast.expr, kind: str) -> None:
        sub_kind = kind
        if isinstance(target, ast.Subscript):
            target = target.value
            sub_kind = "store-sub"
        if isinstance(target, ast.Tuple):
            for elt in target.elts:
                record_write(elt, kind)
            return
        if not isinstance(target, ast.Attribute):
            return
        cls, via_self = owner_of(target.value)
        summary.writes.append(FieldAccess(
            cls=cls, attr=target.attr, line=target.lineno,
            kind=sub_kind, via_self=via_self,
        ))

    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                record_write(target, "assign")
        elif isinstance(sub, ast.AnnAssign):
            if sub.value is not None:
                record_write(sub.target, "assign")
        elif isinstance(sub, ast.AugAssign):
            record_write(sub.target, "augassign")
            # ``self.mutations += 1`` is the runqueue's own bump idiom.
            if (
                isinstance(sub.target, ast.Attribute)
                and normalize_counter(sub.target.attr) in COUNTER_NAMES
            ):
                summary.bumps.append((
                    normalize_counter(sub.target.attr), sub.target.lineno,
                ))
        elif isinstance(sub, ast.Call) and isinstance(
            sub.func, ast.Attribute
        ):
            recv = sub.func.value
            method = sub.func.attr
            if method == "bump":
                counter = _bump_counter(recv)
                if counter is not None:
                    summary.bumps.append((counter, sub.lineno))
                continue
            # Mutating call through a field: ``x.f.m(...)`` mutates the
            # object held by ``f`` -- a write to (class-of-x, f) as far
            # as cache coherence is concerned.
            if isinstance(recv, ast.Attribute):
                cls, via_self = owner_of(recv.value)
                if _mutates(table, cls, recv.attr, method):
                    summary.writes.append(FieldAccess(
                        cls=cls, attr=recv.attr, line=recv.lineno,
                        kind="mutate", via_self=via_self,
                    ))

    # Reads: attribute loads attributed to a project class.  Method and
    # property accesses are call-graph edges, not field reads.
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Attribute):
            continue
        if not isinstance(sub.ctx, ast.Load):
            continue
        cls, via_self = owner_of(sub.value)
        if cls is None or cls.startswith("<"):
            continue
        if table.method(cls, sub.attr) is not None:
            continue
        summary.reads.append(FieldAccess(
            cls=cls, attr=sub.attr, line=sub.lineno,
            kind="read", via_self=via_self,
        ))
    return summary


def _bump_counter(recv: ast.AST) -> Optional[str]:
    """The counter name a ``<recv>.bump()`` call refers to, if clear."""
    if isinstance(recv, ast.Attribute):
        name = normalize_counter(recv.attr)
        return name if name in COUNTER_NAMES else None
    if isinstance(recv, ast.Name):
        name = normalize_counter(recv.id)
        return name if name in COUNTER_NAMES else None
    return None


def _mutates(
    table: SymbolTable,
    holder_cls: Optional[str],
    attr: str,
    method: str,
) -> bool:
    """Whether calling ``method`` on field ``attr`` mutates the field's
    object."""
    ftype: Optional[TypeRef] = None
    if holder_cls is not None and not holder_cls.startswith("<"):
        ftype = table.field_type(holder_cls, attr)
    if ftype is not None and table.resolve_class(ftype.name) is not None:
        return method in table.mutating_methods(ftype.name)
    return method in MUTATOR_METHODS


class CoverageAnalysis:
    """Interprocedural "write followed by bump" queries."""

    def __init__(
        self,
        summaries: Dict[str, FunctionSummary],
        graph: CallGraph,
    ):
        self.summaries = summaries
        self.graph = graph
        self._bumps_any_cache: Dict[str, FrozenSet[str]] = {}

    def bumped_counters(
        self,
        qualname: str,
        _visiting: FrozenSet[str] = frozenset(),
    ) -> FrozenSet[str]:
        """Counters a function bumps anywhere, transitively (memoized).

        Recursion cycles contribute nothing on the cyclic edge; results
        are only cached for queries that completed outside any cycle, so
        an incomplete mid-cycle set never sticks.
        """
        cached = self._bumps_any_cache.get(qualname)
        if cached is not None:
            return cached
        if qualname in _visiting:
            return frozenset()
        visiting = _visiting | {qualname}
        found: Set[str] = set()
        summary = self.summaries.get(qualname)
        if summary is not None:
            found.update(name for name, _line in summary.bumps)
        for site in self.graph.callees(qualname):
            if site.kind != "call":
                continue
            found.update(self.bumped_counters(site.callee, visiting))
        result = frozenset(found)
        if not _visiting:
            self._bumps_any_cache[qualname] = result
        return result

    def _bumps_after(self, qualname: str, line: int, counter: str) -> bool:
        """A bump of ``counter`` at/after ``line`` inside ``qualname``
        (directly or via a callee invoked at/after that line)."""
        summary = self.summaries.get(qualname)
        if summary is not None:
            for name, bump_line in summary.bumps:
                if name == counter and bump_line >= line:
                    return True
        for site in self.graph.callees(qualname):
            if site.kind != "call" or site.line < line:
                continue
            if counter in self.bumped_counters(site.callee):
                return True
        return False

    def covered(
        self,
        qualname: str,
        line: int,
        counter: str,
        _stack: FrozenSet[str] = frozenset(),
    ) -> bool:
        """Is a write at ``qualname:line`` followed by a ``counter`` bump
        on every resolved path back to an entry point?"""
        if self._bumps_after(qualname, line, counter):
            return True
        callers = [
            site for site in self.graph.callers(qualname)
            if site.kind == "call" and site.caller != qualname
        ]
        if not callers:
            return False
        stack = _stack | {qualname}
        for site in callers:
            if site.caller in stack:
                continue  # cycle: the acyclic entries decide
            if not self.covered(site.caller, site.line, counter, stack):
                return False
        return True

"""The offline sanity checker's core: files, rules, findings, the walker.

The paper's Algorithm 2 checker is *online*: it watches invariants while a
simulation runs and can only report violations after the fact.  This module
is the complementary *offline* half -- a small AST-lint framework that
checks the invariants the codebase itself depends on (seed determinism,
the ``sched``/``sim`` layering contract, tracepoint-registry consistency,
feature-flag discipline) before anything executes.

Design:

* :class:`Finding` -- one structured violation (``file:line:col``, rule id,
  message, the offending source line) with a stable :meth:`fingerprint`
  used by the baseline file to grandfather old violations.
* :class:`Rule` -- the plugin interface.  A rule declares a module-prefix
  ``scope``, inspects one parsed file at a time in :meth:`Rule.visit`, and
  may emit cross-file findings from :meth:`Rule.finalize` after the walk
  (the tracepoint-consistency rule needs the whole project).
* :class:`Analyzer` -- the single-pass walker: each file is read and parsed
  exactly once, then offered to every rule whose scope matches.

Rules hold per-run state, so an :class:`Analyzer` (and its rule instances)
is single-use: build a fresh one per run via
:func:`repro.analysis.rules.default_rules`.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Inline suppression directive: ``# repro: noqa[rule-a,rule-b]`` silences
#: the named rules on its line; bare ``# repro: noqa`` silences every rule.
#: Suppressed findings are still collected (marked ``suppressed=True``) so
#: reports can show them next to baseline-grandfathered ones.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[a-z0-9_,\s-]*)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    #: The stripped source line, for display and for the fingerprint.
    snippet: str = ""
    #: ``"error"`` | ``"warning"`` | ``"note"`` -- maps onto SARIF levels.
    severity: str = "warning"
    #: True when an inline ``# repro: noqa[...]`` directive excused this
    #: finding; it is reported but never fails the run.
    suppressed: bool = False

    def fingerprint(self) -> str:
        """A line-number-independent identity for baseline matching.

        Hashes the rule id, the file path, and the offending source text --
        not the line number -- so a baselined violation stays suppressed
        when unrelated edits shift it up or down the file.
        """
        digest = hashlib.sha256(
            f"{self.rule_id}|{self.path}|{self.snippet}".encode("utf-8")
        )
        return digest.hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "severity": self.severity,
            "suppressed": self.suppressed,
            "fingerprint": self.fingerprint(),
        }

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule_id}] {self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)


@dataclass
class FileContext:
    """One parsed source file, as offered to every rule."""

    path: Path
    #: Dotted module name, best effort (``repro.sched.cgroup``).  Tests may
    #: override it to place fixture files inside a rule's scope.
    module: str
    #: Path string used in findings (repo-relative when possible).
    display_path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def line(self, lineno: int) -> str:
        """The stripped source line at 1-based ``lineno`` ("" when absent)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(
        self,
        rule_id: str,
        node: ast.AST,
        message: str,
        severity: str = "warning",
    ) -> Finding:
        lineno = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=rule_id,
            path=self.display_path,
            line=lineno,
            col=col,
            message=message,
            snippet=self.line(lineno),
            severity=severity,
        )


def noqa_directives(lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
    """Per-line inline suppressions: 1-based line -> rule ids (None = all).

    Only the finding's own line is consulted -- a directive never spills
    onto neighbors, so a suppression stays adjacent to the code it excuses.
    """
    directives: Dict[int, Optional[Set[str]]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "#" not in text:
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            directives[lineno] = None
        else:
            names = {r.strip() for r in rules.split(",") if r.strip()}
            # ``noqa[]`` names nothing: treat as suppress-all like bare noqa.
            directives[lineno] = names or None
    return directives


def apply_noqa(
    findings: Iterable[Finding], directives: Dict[int, Optional[Set[str]]]
) -> List[Finding]:
    """Mark findings excused by an inline directive as ``suppressed``."""
    out: List[Finding] = []
    for finding in findings:
        if finding.line in directives:
            rules = directives[finding.line]
            if rules is None or finding.rule_id in rules:
                finding = replace(finding, suppressed=True)
        out.append(finding)
    return out


class Rule:
    """The plugin interface of the offline checker.

    Subclasses set ``rule_id`` (a short kebab-case id used in findings and
    baselines), ``description``, and optionally ``scope`` -- a tuple of
    dotted module prefixes the rule inspects (``None`` means every file).
    """

    rule_id: str = ""
    description: str = ""
    scope: Optional[Tuple[str, ...]] = None
    #: True when the rule accumulates whole-program state across files
    #: (its :meth:`finalize` findings depend on every visited file).  The
    #: parallel runner keeps cross-file rules in the parent process and
    #: only shards the per-file rules across workers.
    cross_file: bool = False

    def wants(self, module: str) -> bool:
        """Whether :meth:`visit` should see the module at all."""
        if self.scope is None:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def visit(self, ctx: FileContext) -> Iterable[Finding]:
        """Inspect one parsed file; yield findings (may also stash state)."""
        return ()

    def finalize(self) -> Iterable[Finding]:
        """Emit cross-file findings after every file has been visited."""
        return ()


def module_for_path(path: Path) -> str:
    """Best-effort dotted module name for a file.

    Climbs parent directories while they are packages (contain an
    ``__init__.py``), mirroring how the import system would name the file.
    A stray file outside any package is just its stem.
    """
    path = path.resolve()
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if path.name == "__init__.py":
        parts = parts[1:] or [path.parent.name]
    return ".".join(reversed(parts))


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen = []
    for path in paths:
        if path.is_dir():
            seen.extend(path.rglob("*.py"))
        elif path.suffix == ".py":
            seen.append(path)
    for path in sorted(set(p.resolve() for p in seen)):
        yield path


def _display_path(path: Path) -> str:
    """Repo-relative posix path when under the cwd, else absolute."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


class Analyzer:
    """The single-pass file walker driving a set of rules."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules: List[Rule] = list(rules)
        #: Inline-suppression directives per display path, kept so findings
        #: a rule emits from :meth:`Rule.finalize` (after the walk) still
        #: honor the noqa comment sitting on their line.
        self._noqa: Dict[str, Dict[int, Optional[Set[str]]]] = {}

    def check_file(
        self, path: Path, module: Optional[str] = None
    ) -> List[Finding]:
        """Visit one file with every in-scope rule (no finalize)."""
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            return [
                Finding(
                    rule_id="parse-error",
                    path=_display_path(path),
                    line=0,
                    col=0,
                    message=f"cannot read file: {exc}",
                )
            ]
        return self.check_source(
            source,
            module=module if module is not None else module_for_path(path),
            path=path,
        )

    def check_source(
        self, source: str, module: str, path: Optional[Path] = None
    ) -> List[Finding]:
        """Visit in-memory source as ``module`` (for tests and fixtures)."""
        display = _display_path(path) if path is not None else f"<{module}>"
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [
                Finding(
                    rule_id="parse-error",
                    path=display,
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            ]
        ctx = FileContext(
            path=path if path is not None else Path(display),
            module=module,
            display_path=display,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )
        directives = noqa_directives(ctx.lines)
        self._noqa[display] = directives
        findings: List[Finding] = []
        for rule in self.rules:
            if rule.wants(module):
                findings.extend(rule.visit(ctx))
        return apply_noqa(findings, directives)

    def run(
        self,
        paths: Sequence[Path],
        modules: Optional[Dict[Path, str]] = None,
    ) -> List[Finding]:
        """Walk ``paths`` (files or directories) and run every rule.

        ``modules`` optionally overrides the dotted module name of specific
        files (used by fixture tests to pull files into a rule's scope).
        """
        findings: List[Finding] = []
        overrides = {p.resolve(): m for p, m in (modules or {}).items()}
        for path in iter_python_files(paths):
            findings.extend(self.check_file(path, overrides.get(path)))
        for rule in self.rules:
            for finding in rule.finalize():
                directives = self._noqa.get(finding.path)
                if directives:
                    finding = apply_noqa([finding], directives)[0]
                findings.append(finding)
        findings.sort(key=Finding.sort_key)
        return findings

"""Interprocedural effect summaries: what each function *does* to the world.

The fast-path work (PR 3) and the parallel orchestrator (PR 5) both rest
on claims of the form "this function is safe to memoize / batch / run
anywhere" -- and the ROADMAP's north-star (a vectorized, array-backed
simulation core) is one giant such claim.  Nothing checked those claims:
the determinism rules were local and syntactic, and the coherence pass
(PR 4) only knew about the handful of contract fields.  This module is
the general engine: over the existing :class:`SymbolTable` /
:class:`CallGraph` fixpoint it computes, per function, a summary of

* fields read and fields written (attributed to their owning class, with
  ``self``-writes separated from *foreign* writes into other objects);
* module globals mutated (``global`` rebinds, mutator-method calls and
  subscript stores on module-level bindings);
* nondeterminism **sources**: unseeded ``random`` draws, wall-clock
  reads, ``os.environ`` reads, ``id()``/``hash()`` ordering, pool
  completion order (``imap_unordered``/``as_completed``), and
  iteration-order-dependent constructs over set-typed values;
* I/O (``open``/``print``, file writes, ``os``/``Path`` filesystem calls).

Two rules consume the engine: ``determinism-taint``
(:mod:`repro.analysis.rules.taint`) flows the sources whole-program into
digest/trace-affecting sinks, and ``pure-hot-path``
(:mod:`repro.analysis.rules.purity`) certifies the fast-path read
closure as effect-bounded and emits the vectorization-safety report the
numpy rewrite must consult.  The runtime counterpart
(:mod:`repro.analysis.effectcheck`) pins these static summaries to
observed attribute mutations during the four bug demos.

Like every pass here, the engine is a *linter's* analysis, not a
verifier: unresolvable calls contribute no effects (consumers must treat
certification as "no escaping effect *found*"), and the runtime effect
sanitizer is the backstop for what static resolution misses.

Everything is pure and deterministic: same trees in, same summaries out.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph, module_aliases, resolve_call
from repro.analysis.dataflow import (
    COUNTER_NAMES,
    FieldAccess,
    build_summaries,
    normalize_counter,
)
from repro.analysis.symbols import (
    MUTATOR_METHODS,
    FunctionInfo,
    SymbolTable,
    TypeRef,
)

# ---------------------------------------------------------------------------
# Shared nondeterminism vocabulary.  The legacy per-file determinism rules
# and the whole-program taint rule import these from here so their
# source/sanitizer lists can never drift apart (satellite: the two rules
# must agree on provably-ordered iteration).

#: Annotation/inference heads that denote unordered set types.
SET_TYPE_NAMES = frozenset({
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
})

#: Callables that consume an iterable order-insensitively: feeding a set
#: (or any nondeterministically-ordered stream) into one of these erases
#: the order dependence -- ``sorted`` by re-imposing a total order, the
#: reductions by commutativity.
ORDER_FREE_CONSUMERS = frozenset({
    "sorted", "sum", "min", "max", "any", "all", "len", "set", "frozenset",
})

#: Callables whose output order mirrors (possibly nondeterministic) input
#: order -- they launder the type but not the order.
ORDER_KEEPING_CALLS = frozenset({"iter", "list", "tuple", "enumerate"})

#: Set-algebra methods whose result is itself an unordered set.
SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})

#: Functions whose *return value* re-imposes spec order on results that
#: were internally produced in completion order.  ``run_pool`` (PR 5)
#: merges worker results by input index -- the j1-vs-jN byte-equality CI
#: gate is the proof backing this sanitizer entry.
SPEC_ORDER_MERGERS = frozenset({"run_pool"})

#: Module-level ``random`` attributes that do NOT draw from the global
#: generator (constructors of private generators, state plumbing).
RNG_ALLOWED = frozenset({"Random", "SystemRandom", "getstate", "setstate"})

#: Dotted wall-clock calls (host time, never simulated time).
WALL_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.now", "datetime.utcnow",
    "datetime.today", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

#: Bare names importable ``from time import ...`` that read the wall clock.
WALL_IMPORTS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
})

#: Filesystem/teletype calls counted as I/O effects.
IO_NAME_CALLS = frozenset({"open", "print", "input"})
IO_ATTR_CALLS = frozenset({
    "write", "writelines", "write_text", "write_bytes", "read_text",
    "read_bytes", "mkdir", "unlink", "makedirs", "remove", "rename",
})

#: The nondeterminism-source kinds the engine distinguishes.  ``ORDER``
#: kinds are erased by an order-free consumer (``sorted`` et al.); value
#: kinds survive any reordering.
ORDER_KINDS = frozenset({"set-order", "pool-order"})
VALUE_KINDS = frozenset({"rng", "wallclock", "env", "idhash"})
SOURCE_KINDS = ORDER_KINDS | VALUE_KINDS


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# Effect summaries.


@dataclass(frozen=True)
class EffectEvent:
    """One observed effect inside a function body."""

    #: Source kinds (``rng``/``wallclock``/``env``/``idhash``/
    #: ``pool-order``/``set-order``), plus ``global-write`` and ``io``.
    kind: str
    line: int
    detail: str


@dataclass
class EffectSummary:
    """The direct (non-transitive) effects of one function."""

    fn: FunctionInfo
    #: (class, attr) fields read, from the dataflow pass.
    reads: FrozenSet[Tuple[str, str]] = frozenset()
    #: Every attribute write, ``self`` and foreign alike.
    writes: Tuple[FieldAccess, ...] = ()
    #: Nondeterminism sources (kind in :data:`SOURCE_KINDS`).
    sources: Tuple[EffectEvent, ...] = ()
    #: Module-global mutations.
    globals_written: Tuple[EffectEvent, ...] = ()
    #: Filesystem/teletype effects.
    io: Tuple[EffectEvent, ...] = ()

    def foreign_writes(self) -> List[FieldAccess]:
        """Writes whose receiver is not the function's own ``self``
        (constructor self-initialization exempt by ``via_self``)."""
        return [w for w in self.writes if not w.via_self]

    def self_writes(self) -> List[FieldAccess]:
        return [w for w in self.writes if w.via_self]


@dataclass
class TransitiveEffects:
    """Effects of a function plus everything it (resolvably) calls.

    Each entry carries provenance: the qualname of the function the
    effect actually occurs in, so a certification failure names the leaf,
    not just the root.
    """

    #: (owner qualname, event).
    sources: List[Tuple[str, EffectEvent]] = field(default_factory=list)
    globals_written: List[Tuple[str, EffectEvent]] = field(default_factory=list)
    io: List[Tuple[str, EffectEvent]] = field(default_factory=list)
    foreign_writes: List[Tuple[str, FieldAccess]] = field(default_factory=list)
    self_writes: List[Tuple[str, FieldAccess]] = field(default_factory=list)
    reads: Set[Tuple[str, str]] = field(default_factory=set)


def _annotation_is_set(ref: Optional[TypeRef]) -> bool:
    return ref is not None and ref.name in SET_TYPE_NAMES


class EffectEngine:
    """Symbol table, call graph, and effect summaries for one file set."""

    def __init__(self, files: Sequence[Tuple[str, str, ast.Module]]):
        self.files = list(files)
        self.table = SymbolTable.build(self.files)
        self.graph = CallGraph.build(self.table, self.files)
        self.aliases = module_aliases(self.files)
        self.field_summaries = build_summaries(self.table)
        #: Names bound at module level, per module (global-write targets).
        self.module_globals: Dict[str, Set[str]] = {
            module: _module_level_names(tree)
            for module, _display, tree in self.files
        }
        self.summaries: Dict[str, EffectSummary] = {
            qual: self._summarize(fn)
            for qual, fn in self.table.functions.items()
        }
        self._transitive_cache: Dict[str, TransitiveEffects] = {}

    # -- construction helpers ----------------------------------------------

    def resolve(self, fn: FunctionInfo, call: ast.Call) -> Optional[str]:
        """Resolve one call expression inside ``fn`` to a qualname."""
        return resolve_call(
            self.table, fn, call, self.table.env_of(fn),
            self.aliases.get(fn.module, {}),
        )

    def is_set_typed(
        self, fn: FunctionInfo, expr: ast.AST
    ) -> bool:
        """Whether an expression is (syntactically or by inference) an
        unordered set."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in SET_METHODS
                and func.attr != "copy"
            ):
                return True
            if isinstance(func, ast.Attribute) and func.attr == "copy":
                return self.is_set_typed(fn, func.value)
            return False
        inferred = self.table.infer_expr(expr, self.table.env_of(fn))
        return _annotation_is_set(inferred)

    def _summarize(self, fn: FunctionInfo) -> EffectSummary:
        node = fn.node
        base = self.field_summaries.get(fn.qualname)
        summary = EffectSummary(
            fn=fn,
            reads=frozenset(
                (r.cls, r.attr)
                for r in (base.reads if base is not None else [])
                if r.cls is not None and not r.cls.startswith("<")
            ),
            writes=tuple(base.writes) if base is not None else (),
        )
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return summary
        env = self.table.env_of(fn)
        aliases = self.aliases.get(fn.module, {})
        globals_of_module = self.module_globals.get(fn.module, set())
        declared_global: Set[str] = set()
        bound_local: Set[str] = {
            a.arg for a in (
                list(node.args.posonlyargs) + list(node.args.args)
                + list(node.args.kwonlyargs)
            )
        }
        sources: List[EffectEvent] = []
        globals_written: List[EffectEvent] = []
        io: List[EffectEvent] = []
        parents: Dict[int, ast.AST] = {}
        for sub in ast.walk(node):
            for child in ast.iter_child_nodes(sub):
                parents[id(child)] = sub

        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                declared_global.update(sub.names)
            elif isinstance(sub, ast.Assign):
                for tgt in sub.targets:
                    for name_node in ast.walk(tgt):
                        if isinstance(name_node, ast.Name) and isinstance(
                            name_node.ctx, ast.Store
                        ):
                            bound_local.add(name_node.id)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign, ast.For)):
                tgt = sub.target
                if isinstance(tgt, ast.Name):
                    bound_local.add(tgt.id)

        for sub in ast.walk(node):
            line = getattr(sub, "lineno", 0)
            if isinstance(sub, ast.Call):
                self._scan_call(fn, sub, env, aliases, sources, io, parents)
                # Mutator call on a module-global binding.
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.attr in MUTATOR_METHODS
                    and func.value.id in globals_of_module
                    and (
                        func.value.id in declared_global
                        or func.value.id not in bound_local
                    )
                ):
                    globals_written.append(EffectEvent(
                        "global-write", line,
                        f"{func.value.id}.{func.attr}(...) mutates a "
                        "module-level binding",
                    ))
            elif isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for tgt in targets:
                    sub_tgt = tgt
                    if isinstance(sub_tgt, ast.Subscript):
                        sub_tgt = sub_tgt.value
                        if (
                            isinstance(sub_tgt, ast.Name)
                            and sub_tgt.id in globals_of_module
                            and (
                                sub_tgt.id in declared_global
                                or sub_tgt.id not in bound_local
                            )
                        ):
                            globals_written.append(EffectEvent(
                                "global-write", line,
                                f"subscript store into module-level "
                                f"{sub_tgt.id!r}",
                            ))
                    elif (
                        isinstance(sub_tgt, ast.Name)
                        and sub_tgt.id in declared_global
                    ):
                        globals_written.append(EffectEvent(
                            "global-write", line,
                            f"rebinds module-level {sub_tgt.id!r} "
                            "(global statement)",
                        ))
            elif isinstance(sub, ast.Subscript) and isinstance(
                sub.ctx, ast.Load
            ):
                if dotted_name(sub.value) == "os.environ":
                    sources.append(EffectEvent(
                        "env", line, "os.environ[...] read",
                    ))

        sources.extend(self._order_dependent_sites(fn, node))
        return EffectSummary(
            fn=fn,
            reads=summary.reads,
            writes=summary.writes,
            sources=tuple(sorted(
                sources, key=lambda e: (e.line, e.kind, e.detail)
            )),
            globals_written=tuple(sorted(
                globals_written, key=lambda e: (e.line, e.detail)
            )),
            io=tuple(sorted(io, key=lambda e: (e.line, e.detail))),
        )

    def _scan_call(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: Dict[str, Optional[TypeRef]],
        aliases: Dict[str, str],
        sources: List[EffectEvent],
        io: List[EffectEvent],
        parents: Dict[int, ast.AST],
    ) -> None:
        func = call.func
        line = call.lineno
        dotted = dotted_name(func)
        # Unseeded global-generator draws.  ``random.Random(...)`` and
        # state plumbing are the approved idiom; a typed local named
        # ``random`` shadows the module.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and env.get("random") is None
            and func.attr not in RNG_ALLOWED
        ):
            sources.append(EffectEvent(
                "rng", line, f"random.{func.attr}() draws from the "
                "process-global generator",
            ))
        elif isinstance(func, ast.Name):
            alias_target = aliases.get(func.id)
            if (
                alias_target is not None
                and alias_target.startswith("random.")
                and alias_target.split(".", 1)[1] not in RNG_ALLOWED
            ):
                sources.append(EffectEvent(
                    "rng", line,
                    f"{func.id}() is module-level {alias_target}",
                ))
            elif alias_target is not None and (
                alias_target in WALL_CALLS
                or (
                    alias_target.startswith("time.")
                    and alias_target.split(".", 1)[1] in WALL_IMPORTS
                )
            ):
                sources.append(EffectEvent(
                    "wallclock", line,
                    f"{func.id}() reads the host clock ({alias_target})",
                ))
            elif func.id in ("id", "hash") and func.id not in env:
                if not _is_memo_key_use(call, parents):
                    sources.append(EffectEvent(
                        "idhash", line,
                        f"{func.id}() depends on allocation addresses / "
                        "PYTHONHASHSEED",
                    ))
            elif func.id == "getenv" and aliases.get("getenv") == "os.getenv":
                sources.append(EffectEvent("env", line, "os.getenv() read"))
            elif func.id in IO_NAME_CALLS:
                io.append(EffectEvent("io", line, f"{func.id}() call"))
            elif func.id == "as_completed":
                sources.append(EffectEvent(
                    "pool-order", line,
                    "as_completed() yields in completion order",
                ))
        if dotted is not None:
            if dotted in WALL_CALLS:
                sources.append(EffectEvent(
                    "wallclock", line, f"{dotted}() reads the host clock",
                ))
            elif dotted in ("os.getenv",):
                sources.append(EffectEvent("env", line, "os.getenv() read"))
            elif dotted.startswith("os.environ."):
                sources.append(EffectEvent(
                    "env", line, f"{dotted}() read",
                ))
        if isinstance(func, ast.Attribute):
            if func.attr in ("imap_unordered", "as_completed"):
                sources.append(EffectEvent(
                    "pool-order", line,
                    f".{func.attr}() yields in worker completion order",
                ))
            elif func.attr in IO_ATTR_CALLS:
                # Only count as I/O when the receiver is not a project
                # class (project ``write`` methods are plain calls whose
                # own effects are summarized separately).
                base = self.table.infer_expr(func.value, env)
                if base is None or self.table.resolve_class(base.name) is None:
                    io.append(EffectEvent(
                        "io", line, f".{func.attr}() call",
                    ))

    def _order_dependent_sites(
        self, fn: FunctionInfo, node: ast.AST
    ) -> List[EffectEvent]:
        """Iteration-order-dependent constructs over set-typed values.

        A site is exempt when its result feeds an order-free consumer
        directly (``sorted(tuple(s))``, ``sum(x for x in s)``) or when
        the construct's own output is a set again (order re-erased).
        """
        events: List[EffectEvent] = []
        parents: Dict[ast.AST, ast.AST] = {}
        for sub in ast.walk(node):
            for child in ast.iter_child_nodes(sub):
                parents[child] = sub

        def consumed_order_free(site: ast.AST) -> bool:
            consumer = parents.get(site)
            return (
                isinstance(consumer, ast.Call)
                and isinstance(consumer.func, ast.Name)
                and consumer.func.id in ORDER_FREE_CONSUMERS
                and len(consumer.args) >= 1
                and consumer.args[0] is site
            )

        for sub in ast.walk(node):
            if isinstance(sub, (ast.For, ast.AsyncFor)):
                if self.is_set_typed(fn, sub.iter):
                    events.append(EffectEvent(
                        "set-order", sub.lineno,
                        "for-loop iterates a set-typed value",
                    ))
            elif isinstance(
                sub, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
            ):
                if consumed_order_free(sub):
                    continue
                for gen in sub.generators:
                    if self.is_set_typed(fn, gen.iter):
                        events.append(EffectEvent(
                            "set-order", sub.lineno,
                            "comprehension iterates a set-typed value",
                        ))
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in ORDER_KEEPING_CALLS
                    and sub.args
                    and not consumed_order_free(sub)
                    and self.is_set_typed(fn, sub.args[0])
                ):
                    events.append(EffectEvent(
                        "set-order", sub.lineno,
                        f"{func.id}() preserves set iteration order",
                    ))
        return events

    # -- transitive queries -------------------------------------------------

    def transitive(self, qualname: str) -> TransitiveEffects:
        """Effects of ``qualname`` plus its resolvable callee closure."""
        cached = self._transitive_cache.get(qualname)
        if cached is not None:
            return cached
        merged = TransitiveEffects()
        for member in sorted(self.closure([qualname])):
            summary = self.summaries.get(member)
            if summary is None:
                continue
            merged.sources.extend((member, e) for e in summary.sources)
            merged.globals_written.extend(
                (member, e) for e in summary.globals_written
            )
            merged.io.extend((member, e) for e in summary.io)
            merged.foreign_writes.extend(
                (member, w) for w in summary.foreign_writes()
            )
            merged.self_writes.extend(
                (member, w) for w in summary.self_writes()
            )
            merged.reads.update(summary.reads)
        self._transitive_cache[qualname] = merged
        return merged

    def closure(self, roots: Iterable[str]) -> Set[str]:
        """Qualnames reachable from ``roots`` via calls and properties."""
        seen: Set[str] = set()
        queue = [r for r in roots if r in self.table.functions]
        while queue:
            qual = queue.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for site in self.graph.callees(qual):
                if site.callee not in seen:
                    queue.append(site.callee)
        return seen


#: Dict-lookup methods whose first argument is a key.
_KEYED_LOOKUPS = frozenset({"get", "pop", "setdefault"})


def _is_memo_key_use(call: ast.Call, parents: Dict[int, ast.AST]) -> bool:
    """``id(x)``/``hash(x)`` consumed *directly* as a mapping key.

    The identity-keyed-memo idiom (``self._groups[id(group)]``,
    ``self._designated.get(id(group))``): the identity value selects an
    entry and never escapes the lookup, so it cannot reorder anything
    observable -- the memo's *values* are what flow onward.  Interning
    (``DomainBuilder``) keeps the key stable within a pass.  Any other
    use of ``id()``/``hash()`` (comparisons, arithmetic, storage in
    results) stays a nondeterminism source.
    """
    parent = parents.get(id(call))
    if isinstance(parent, ast.Subscript) and parent.slice is call:
        return True
    if (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Attribute)
        and parent.func.attr in _KEYED_LOOKUPS
        and parent.args
        and parent.args[0] is call
    ):
        return True
    return False


def _module_level_names(tree: ast.Module) -> Set[str]:
    """Names bound by module-level statements (assignment targets)."""
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for tgt in stmt.targets:
                for name_node in ast.walk(tgt):
                    if isinstance(name_node, ast.Name):
                        names.add(name_node.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return names


# ---------------------------------------------------------------------------
# Hot-path purity classification (consumed by the pure-hot-path rule and
# the vectorization-safety report).

#: The fast-path hot loops: every function reachable from these is what
#: ``SchedFeatures.with_fastpath`` memoizes/batches -- and therefore what
#: the ROADMAP's vectorized core would transform first.  Labels are
#: report keys; values locate the root as (class bare name or None, name).
HOT_ROOTS: Dict[str, Tuple[Optional[str], str]] = {
    "runqueue-load": ("RunQueue", "load"),
    "runqueue-total-weight": ("RunQueue", "total_weight"),
    "balance-cpu-sample": ("BalancePass", "cpu_load_nr"),
    "balance-group-stats": ("BalancePass", "group_stats"),
    "balance-designated": ("BalancePass", "designated_for"),
    "group-stats-fold": (None, "_fold_group_stats"),
    "designated-election": (None, "_elect_designated"),
    "event-pending": ("EventLoop", "pending"),
    # The vectorized core's kernels (repro.sched.vecstate / vec): the
    # mirror sync sweep, the group folds, the bulk busiest-group
    # selection, the election memo, and both array backends' wide-fold
    # kernel.  Everything they reach must stay effect-bounded or the
    # batched rewrite's certificate is void (the rule fails the lint).
    "vec-sync": ("VecState", "_sync"),
    "vec-group-stats": ("VecState", "group_stats"),
    "vec-fold": ("VecState", "_fold_entry"),
    "vec-find-busiest": ("VecState", "find_busiest"),
    "vec-designated": ("VecState", "designated_for"),
    "vec-kernel-numpy": ("_NumpyOps", "fold_group"),
    "vec-kernel-python": ("_PythonOps", "fold_group"),
    # The tick/pick/enqueue hot-loop kernels: the batched tick body
    # (both backends), the pick-index argmin kernels behind
    # RunQueue.pick_next's flat (vruntime, tid) index, and the
    # periodic/NOHZ balance-driver reductions over the per-CPU
    # next-balance deadline array.
    "vec-tick-kernel-numpy": ("_NumpyOps", "tick_batch"),
    "vec-tick-kernel-python": ("_PythonOps", "tick_batch"),
    "vec-pick-argmin-numpy": ("_NumpyOps", "argmin_pairs"),
    "vec-pick-argmin-python": ("_PythonOps", "argmin_pairs"),
    "vec-pick-index": ("PickIndex", "peek"),
    "vec-balance-gate": ("VecState", "gated"),
    "vec-balance-due": ("VecState", "balance_due"),
}

#: Classification lattice, weakest to strongest claim.
CATEGORIES = ("pure", "bounded", "escaping")


def root_function(
    engine: EffectEngine, cls: Optional[str], name: str
) -> Optional[FunctionInfo]:
    """Locate one hot root in the engine's symbol table."""
    if cls is not None:
        info = engine.table.resolve_class(cls)
        if info is None:
            return None
        return info.methods.get(name)
    for fn in engine.table.functions.values():
        if fn.name == name and fn.cls is None:
            return fn
    return None


def classify_function(
    engine: EffectEngine, qualname: str
) -> Tuple[str, List[str]]:
    """(category, reasons) for one function's *direct* effects.

    * ``pure`` -- reads only: no writes, no sources, no globals, no I/O.
    * ``bounded`` -- writes confined to the receiver's own state
      (``self`` fields: memo cells, counters, incremental mirrors) --
      batching must preserve them but nothing outside the object can
      observe intermediate states.
    * ``escaping`` -- anything the vectorized rewrite cannot reorder:
      foreign-object writes, module-global mutation, nondeterminism
      sources, or I/O.
    """
    summary = engine.summaries.get(qualname)
    if summary is None:
        return "pure", []
    reasons: List[str] = []
    for event in summary.sources:
        reasons.append(
            f"line {event.line}: nondeterminism source [{event.kind}]: "
            f"{event.detail}"
        )
    for event in summary.globals_written:
        reasons.append(f"line {event.line}: {event.detail}")
    for event in summary.io:
        reasons.append(f"line {event.line}: I/O: {event.detail}")
    if not summary.fn.is_init:
        for write in summary.foreign_writes():
            owner = write.cls or "<unresolved>"
            if owner.startswith("<"):
                continue  # builtin/typing receiver: not an object escape
            if write.kind == "mutate":
                ftype = engine.table.field_type(owner, write.attr)
                if (
                    ftype is not None
                    and engine.table.resolve_class(ftype.name) is not None
                ):
                    # A mutating *call* on a project-class field
                    # (``cpu.rq.load(...)``): the actual writes happen
                    # inside the callee, which the call graph already
                    # pulls into the closure and classifies on its own
                    # -- counting the call site again would double-bill
                    # the callee's self-confined memo writes as foreign.
                    continue
            reasons.append(
                f"line {write.line}: writes {owner}.{write.attr} through "
                "a foreign receiver"
            )
    if reasons:
        return "escaping", reasons
    if summary.fn.is_init or summary.self_writes():
        return "bounded", []
    if summary.foreign_writes():
        # Only builtin-receiver writes remained (e.g. a local list).
        return "bounded", []
    return "pure", []


def _memo_write_kinds(summary: EffectSummary) -> List[str]:
    """Human-readable labels for a bounded function's self-writes."""
    labels: Set[str] = set()
    for write in summary.self_writes():
        if write.attr.startswith("_cached"):
            labels.add("memo-cell")
        elif normalize_counter(write.attr) in COUNTER_NAMES:
            labels.add("dirty-counter")
        else:
            labels.add(f"self.{write.attr}")
    return sorted(labels)


def vectorization_report(
    engine: EffectEngine,
) -> Dict[str, object]:
    """The machine-readable vectorization-safety certification.

    Walks the callee closure of every :data:`HOT_ROOTS` entry, classifies
    each member function, and names exactly which functions the batched/
    numpy rewrite may transform (``safe``: pure or bounded) and which
    have escaping effects (``unsafe``, with reasons).  Functions outside
    the closure are simply not certified either way.
    """
    roots: Dict[str, str] = {}
    for label in sorted(HOT_ROOTS):
        cls, name = HOT_ROOTS[label]
        fn = root_function(engine, cls, name)
        if fn is not None:
            roots[label] = fn.qualname
    members = engine.closure(roots.values())
    functions: List[Dict[str, object]] = []
    safe: List[str] = []
    unsafe: List[str] = []
    counts = {category: 0 for category in CATEGORIES}
    for qual in sorted(members):
        summary = engine.summaries.get(qual)
        if summary is None:
            continue
        category, reasons = classify_function(engine, qual)
        counts[category] += 1
        (safe if category != "escaping" else unsafe).append(qual)
        entry: Dict[str, object] = {
            "qualname": qual,
            "path": summary.fn.display_path,
            "line": getattr(summary.fn.node, "lineno", 0),
            "category": category,
            "reads": sorted(f"{c}.{a}" for c, a in summary.reads),
        }
        if category == "bounded":
            entry["self_effects"] = _memo_write_kinds(summary)
        if reasons:
            entry["reasons"] = reasons
        functions.append(entry)
    return {
        "version": 1,
        "tool": "repro-lint/pure-hot-path",
        "roots": roots,
        "summary": counts,
        "safe": safe,
        "unsafe": unsafe,
        "functions": functions,
    }

"""Hot-path cost & allocation analyzer.

PR 8's profile of the vectorized core says the remaining wall time is
scalar CFS pick/enqueue object churn, not balance sampling.  This module
turns that observation into a *tool*: a whole-program static model, built
on the PR 4 :class:`~repro.analysis.symbols.SymbolTable` /
:class:`~repro.analysis.callgraph.CallGraph` and the PR 7
:class:`~repro.analysis.effects.EffectEngine`, that

* infers every **allocation site** in the scheduler/sim layers -- list,
  dict, set, tuple and object construction, comprehensions and generator
  expressions, closures, string formatting -- and classifies each by a
  syntactic escape analysis into ``per-call`` (runs on the hot path's
  steady state), ``amortized`` (memo/epoch-guarded: the site runs only
  on a miss path, behind the same guard idioms the PR 4 coherence rule
  certifies), or ``init-only`` (constructors);
* infers a **symbolic loop cost** per function over the simulation's
  collection domains (``tasks``, ``cpus``, ``groups``, ``heap``...) by
  resolving loop iterables through the callgraph, composing the costs
  interprocedurally to per-:data:`~repro.analysis.effects.HOT_ROOTS`
  big-O expressions (a worst-case expression and a *steady-state* one
  that drops memo-guarded contributions);
* certifies each hot root on the ``alloc-free`` < ``amortized`` <
  ``allocating`` lattice (mirroring PR 7's pure < bounded < escaping)
  against the declarations in :mod:`repro.sched.allocdecl`; and
* ranks the **scalar residue** -- functions reachable from the
  simulation drivers but *not* from the vectorized kernels -- by static
  cost x bench-profile weight: the work-list for the next
  vectorization PR.

Escape analysis, precisely
--------------------------

A site (or call edge) is ``amortized`` when any of these hold:

* it appears *after* the function's first **guarded return** -- a
  ``return`` whose governing ``if`` tests private memo/epoch state
  (``self._cached...``, any ``self._x`` read, or ``m is (not) None`` for
  a local bound from a private-dict probe), or that directly returns a
  private incremental mirror (``return self._total_weight``).  This is
  the memo-hit idiom: everything after the hit return is the miss path;
* it sits inside a branch whose test reads private ``self._x`` state
  (epoch compares, mode flags -- the hot configuration has the caches
  on, so cache-off fallbacks are not steady-state), or inside the miss
  arm of a memo-probe test (``if m is None: ...`` body, or the ``else``
  of ``if m is not None: ...``).

Two allocation kinds are *reported but exempt from certification*,
mirroring what the runtime tracker (:mod:`repro.analysis.alloctrack`)
can observe: **boxed arithmetic** (fresh int/float objects, served from
CPython freelists and far below the tracker's byte threshold) and
**bare tuple returns** (``return a, b, c`` -- the function's calling
convention, freelist-served and not churn the vectorized rewrite could
remove without changing the interface).

Branches guarded by the coherence sanitizer's flags (``self._sanitize``)
are excluded entirely, like the coherence rule excludes
``repro.sched.sanitizer`` from dependency closures: the cross-check is
definitionally not the production path.

Everything here is a pure function of the analyzed source text: same
trees in, same report out -- on any backend, with or without numpy.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.effects import (
    HOT_ROOTS,
    EffectEngine,
    root_function,
)
from repro.analysis.symbols import FunctionInfo, TypeRef

#: Schema version of the ``--cost-report`` document.
COST_REPORT_VERSION = 1

#: The certification lattice, weakest to strongest allocation behavior.
ALLOC_LATTICE: Tuple[str, ...] = ("alloc-free", "amortized", "allocating")

#: Site escape classes.
ESCAPES: Tuple[str, ...] = ("init-only", "amortized", "per-call")

#: Reference sizes used to scalarize cost polynomials for the residue
#: ranking (the soak64 bench machine: 64 CPUs, ~64 runnable tasks).
DOMAIN_SIZES: Dict[str, int] = {
    "tasks": 64,
    "cpus": 64,
    "groups": 8,
    "domains": 3,
    "heap": 256,
    "log(tasks)": 6,
    "log(heap)": 8,
    "rec": 16,
    "n": 8,
}

#: Sanitizer-mode flags: an ``if`` testing one of these guards a
#: diagnostic cross-check branch, excluded from the hot-path model.
_DIAGNOSTIC_FLAGS = frozenset({"_sanitize", "sanitize_coherence"})

#: The sanitizer module itself is never part of the production path.
_SANITIZER_MODULE = "repro.sched.sanitizer"

#: Builtin constructors that allocate a container.
_CONTAINER_CTORS = frozenset({
    "list", "dict", "set", "tuple", "frozenset", "sorted",
})

#: Builtin iterable adapters that add no domain of their own.
_ITER_PASSTHROUGH = frozenset({
    "sorted", "list", "tuple", "set", "frozenset", "reversed", "iter",
    "enumerate", "range",
})

#: Cost axioms: data-structure operations whose bounds the loop-domain
#: engine cannot derive syntactically (balanced-tree walks, heap sifts,
#: in-frame folds over unpacked member counts).  Stated once, next to
#: their structure; an axiom replaces the whole computed subtree.
_COST_AXIOMS: Dict[str, str] = {
    "RBTree.insert": "log(tasks)",
    "RBTree.remove": "log(tasks)",
    "RBTree.leftmost": "log(tasks)",
    "RBTree.pop_leftmost": "log(tasks)",
    "RBTree.get": "log(tasks)",
    "RBTree.__contains__": "log(tasks)",
    "RBTree.__len__": "1",
    "RBTree.values": "tasks",
    "RBTree.items": "tasks",
    "RBTree.keys": "tasks",
    "VecState._fold_entry": "cpus",
    "_NumpyOps.fold_group": "cpus",
    "_PythonOps.fold_group": "cpus",
}

#: C-level heap primitives (unresolvable through the callgraph).
_HEAP_CALL_COSTS: Dict[str, str] = {
    "heappush": "log(heap)",
    "heappop": "log(heap)",
    "heapreplace": "log(heap)",
    "heapify": "heap",
}

#: Known iterable producers -> domain (by resolved qualname).
_ITER_DOMAIN_FUNCS: Dict[str, str] = {
    "RunQueue.all_tasks": "tasks",
    "RunQueue.queued_tasks": "tasks",
    "RBTree.values": "tasks",
    "RBTree.items": "tasks",
    "RBTree.keys": "tasks",
    "SchedGroup.sorted_cpus": "cpus",
    "SchedGroup.sorted_balance_mask": "cpus",
    "SchedGroup.balance_mask": "cpus",
    "Scheduler.online_cpus": "cpus",
    "Scheduler.idle_cpus": "cpus",
}

#: Known iterable fields -> domain, by (class bare name, attribute).
_ITER_DOMAIN_FIELDS: Dict[Tuple[str, str], str] = {
    ("Scheduler", "cpus"): "cpus",
    ("System", "cpus"): "cpus",
    ("SchedDomain", "groups"): "groups",
    ("SchedGroup", "cpus"): "cpus",
    ("SchedGroup", "balance_cpus"): "cpus",
    ("EventLoop", "_heap"): "heap",
    ("VecState", "_dirty_list"): "cpus",
    ("VecState", "_desig_by_cpu"): "cpus",
    ("BalancePass", "_loads"): "cpus",
    ("BalancePass", "_nrs"): "cpus",
    ("BalancePass", "_muts"): "cpus",
    ("_DomainCache", "entries"): "groups",
    ("_DomainCache", "examined"): "cpus",
}

#: Element-type bare names -> domain (for annotated containers).
_ELEM_DOMAINS: Dict[str, str] = {
    "Task": "tasks",
    "Cpu": "cpus",
    "SchedGroup": "groups",
    "SchedDomain": "domains",
    "_Event": "heap",
}

#: The scalar simulation drivers the residue ranking closes over: the
#: event dispatch loop and every scheduler entry point it fires.
SIM_ROOTS: Dict[str, Tuple[Optional[str], str]] = {
    "sim-dispatch": ("EventLoop", "run_until"),
    "sim-pick-next": ("Scheduler", "pick_next_task"),
    "sim-tick": ("Scheduler", "tick"),
    "sim-wake": ("Scheduler", "wake_task"),
    "sim-account": ("Scheduler", "account"),
    "sim-deschedule": ("Scheduler", "deschedule"),
    "sim-migrate": ("Scheduler", "migrate_task"),
}

#: A cost polynomial: sorted factor tuple -> coefficient.  The empty
#: tuple is the constant term; factor multisets are capped at degree 4.
Poly = Dict[Tuple[str, ...], int]

_MAX_DEGREE = 4
_MAX_COEFF = 999


def _poly_const(coeff: int = 1) -> Poly:
    return {(): coeff}


def _poly_add(into: Poly, other: Poly) -> None:
    for factors, coeff in other.items():
        into[factors] = min(into.get(factors, 0) + coeff, _MAX_COEFF)


def _poly_scale(poly: Poly, factors: Tuple[str, ...]) -> Poly:
    if not factors:
        return dict(poly)
    out: Poly = {}
    for key, coeff in poly.items():
        merged = tuple(sorted(key + factors))[:_MAX_DEGREE]
        out[merged] = min(out.get(merged, 0) + coeff, _MAX_COEFF)
    return out


def render_poly(poly: Poly) -> str:
    """``O(cpus*tasks + log(tasks) + 1)``-style rendering (big-O: the
    coefficients are dropped, term order is degree-major)."""
    if not poly:
        return "O(1)"
    terms = sorted(poly, key=lambda t: (-len(t), t))
    parts = ["*".join(t) if t else "1" for t in terms]
    return "O(" + " + ".join(parts) + ")"


def scalarize(poly: Poly, sizes: Optional[Dict[str, int]] = None) -> int:
    """The polynomial evaluated at the reference domain sizes."""
    table = sizes if sizes is not None else DOMAIN_SIZES
    total = 0
    for factors, coeff in poly.items():
        value = coeff
        for factor in factors:
            value *= table.get(factor, DOMAIN_SIZES["n"])
        total += value
    return total


def dominated(term: Tuple[str, ...], baseline: Sequence[Sequence[str]]) -> bool:
    """True when some baseline term covers ``term`` (multiset inclusion:
    every factor of ``term`` appears in the baseline term at least as
    often) -- i.e. the term is no worse than the committed bound."""
    need: Dict[str, int] = {}
    for factor in term:
        need[factor] = need.get(factor, 0) + 1
    for base in baseline:
        have: Dict[str, int] = {}
        for factor in base:
            have[factor] = have.get(factor, 0) + 1
        if all(have.get(f, 0) >= c for f, c in need.items()):
            return True
    return False


# -- per-function scan -------------------------------------------------------


@dataclass(frozen=True)
class AllocSite:
    """One allocation expression inside one function."""

    kind: str
    line: int
    col: int
    detail: str
    escape: str
    #: False for the box / bare-tuple-return carve-outs: reported in the
    #: cost report but never counted against a certification.
    certifiable: bool = True


@dataclass
class FunctionScan:
    """Allocation sites, guard structure, and loop skeleton of one
    function -- everything the interprocedural passes consume."""

    fn: FunctionInfo
    sites: List[AllocSite] = field(default_factory=list)
    #: Aggregate count of boxing-prone arithmetic nodes (reported only).
    boxes: int = 0
    #: Line of the first memo-hit return, or None.
    guard_line: Optional[int] = None
    #: Call-site line -> escape class ("per-call"/"amortized"), or
    #: "diagnostic" for sanitizer branches (excluded outright).
    call_class: Dict[int, str] = field(default_factory=dict)
    #: (multiplier factors, call node) for every call, for cost folding.
    calls: List[Tuple[Tuple[str, ...], ast.Call]] = field(
        default_factory=list
    )
    #: Loop terms contributed directly by this function's body.
    direct_cost: Poly = field(default_factory=dict)
    #: Loop terms on memo-guarded (non-steady) paths only.
    guarded_cost: Poly = field(default_factory=dict)


def _is_self_priv(node: ast.AST, extra: Iterable[str] = ()) -> bool:
    names = set(extra)
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (node.attr.startswith("_") or node.attr in names)
    )


def _reads_self_priv(expr: ast.AST) -> bool:
    return any(_is_self_priv(sub) for sub in ast.walk(expr))


def _is_diagnostic_test(expr: ast.AST) -> bool:
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Attribute) and sub.attr in _DIAGNOSTIC_FLAGS:
            return True
        if isinstance(sub, ast.Name) and sub.id in _DIAGNOSTIC_FLAGS:
            return True
    return False


def _memo_probe_names(node: ast.AST, params: Set[str]) -> Set[str]:
    """Locals bound from a private-memo probe: ``x = self._m.get(k)``,
    ``x = self._m[k]``, ``x = m[k]`` for an alias/parameter ``m`` of a
    private container (one level of ``alias = self._m`` is chased)."""
    aliases: Set[str] = set()
    names: Set[str] = set()
    assigns: List[Tuple[ast.expr, ast.expr]] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            assigns.append((sub.targets[0], sub.value))
    for target, value in assigns:
        if isinstance(target, ast.Name) and _is_self_priv(value):
            aliases.add(target.id)
    probed = aliases | params
    for target, value in assigns:
        if not isinstance(target, ast.Name):
            continue
        base: Optional[ast.expr] = None
        if isinstance(value, ast.Subscript):
            base = value.value
        elif (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in ("get", "pop", "setdefault")
        ):
            base = value.func.value
        if base is None:
            continue
        if _is_self_priv(base):
            names.add(target.id)
        elif isinstance(base, ast.Name) and base.id in probed:
            names.add(target.id)
    return names


def _memo_none_test(
    expr: ast.AST, memo_names: Set[str]
) -> Optional[str]:
    """``"miss"``/``"hit"`` when the test is a memo-probe None check."""
    for sub in ast.walk(expr):
        if not isinstance(sub, ast.Compare) or len(sub.ops) != 1:
            continue
        op = sub.ops[0]
        sides = [sub.left, sub.comparators[0]]
        has_none = any(
            isinstance(s, ast.Constant) and s.value is None for s in sides
        )
        has_memo = any(
            isinstance(s, ast.Name) and s.id in memo_names for s in sides
        )
        if has_none and has_memo:
            if isinstance(op, ast.Is):
                return "miss"
            if isinstance(op, ast.IsNot):
                return "hit"
    return None


def _is_hit_shaped(expr: ast.AST, memo_names: Set[str]) -> bool:
    """A test that gates a memo/epoch/mode fast path: any private-state
    read, or a memo-probe ``is not None``."""
    if _reads_self_priv(expr):
        return True
    return _memo_none_test(expr, memo_names) == "hit"


class _FunctionWalker:
    """One function's recursive statement walk: classifies every
    allocation site and call edge, and accumulates the loop skeleton."""

    def __init__(
        self,
        scan: FunctionScan,
        memo_names: Set[str],
        domain_of: "Dict[int, str]",
        is_class: Callable[[str], bool],
    ) -> None:
        self.scan = scan
        self.memo_names = memo_names
        #: id(loop node) -> resolved iteration domain ("" = constant).
        self.domain_of = domain_of
        #: Does this bare name resolve to a known class (ctor call)?
        self.is_class = is_class
        self.is_init = scan.fn.is_init

    # -- statement walk ----------------------------------------------------

    def walk_body(
        self,
        stmts: Sequence[ast.stmt],
        mult: Tuple[str, ...],
        amortized: bool,
    ) -> None:
        guard = self.scan.guard_line
        for stmt in stmts:
            if guard is None and self.scan.guard_line is not None:
                # A guarded return appeared earlier in this body: every
                # later sibling is the miss path.
                guard = self.scan.guard_line
            here = amortized or (
                guard is not None and stmt.lineno > guard
            )
            self._walk_stmt(stmt, mult, here)

    def _walk_stmt(
        self, stmt: ast.stmt, mult: Tuple[str, ...], amortized: bool
    ) -> None:
        scan = self.scan
        if isinstance(stmt, ast.If):
            if _is_diagnostic_test(stmt.test):
                # Sanitizer cross-check branch: skip the body outright,
                # keep walking the else arm.
                self._scan_expr(stmt.test, mult, amortized)
                self.walk_body(stmt.orelse, mult, amortized)
                return
            self._scan_expr(stmt.test, mult, amortized)
            probe = _memo_none_test(stmt.test, self.memo_names)
            hit_shaped = _is_hit_shaped(stmt.test, self.memo_names)
            # Private-state tests and memo miss-arms amortize their
            # branch; the *hit* arm of a probe stays steady-state but a
            # return inside it establishes the function's guard line.
            body_amortized = amortized or probe == "miss" or (
                hit_shaped and probe != "hit"
            )
            if hit_shaped:
                self._note_guarded_returns(stmt)
            self.walk_body(stmt.body, mult, body_amortized)
            else_amortized = amortized or probe == "hit"
            self.walk_body(stmt.orelse, mult, else_amortized)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            domain = self.domain_of.get(id(stmt), "n")
            factors = mult if domain == "" else tuple(
                sorted(mult + (domain,))
            )[:_MAX_DEGREE]
            self._scan_expr(stmt.iter, mult, amortized)
            self._add_loop_term(factors, amortized)
            self.walk_body(stmt.body, factors, amortized)
            self.walk_body(stmt.orelse, mult, amortized)
            return
        if isinstance(stmt, ast.While):
            domain = self.domain_of.get(id(stmt), "n")
            factors = mult if domain == "" else tuple(
                sorted(mult + (domain,))
            )[:_MAX_DEGREE]
            self._scan_expr(stmt.test, factors, amortized)
            self._add_loop_term(factors, amortized)
            self.walk_body(stmt.body, factors, amortized)
            self.walk_body(stmt.orelse, mult, amortized)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._scan_expr(
                    stmt.value, mult, amortized, is_return=True
                )
                if self.scan.guard_line is None and self._returns_mirror(
                    stmt.value
                ):
                    self.scan.guard_line = stmt.lineno
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._add_site(
                "closure", stmt, f"nested def {stmt.name}", amortized
            )
            return  # inner defs are separate functions in the table
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            return  # error paths are not steady-state behavior
        if isinstance(stmt, ast.Try):
            self.walk_body(stmt.body, mult, amortized)
            for handler in stmt.handlers:
                self.walk_body(handler.body, mult, amortized)
            self.walk_body(stmt.orelse, mult, amortized)
            self.walk_body(stmt.finalbody, mult, amortized)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._scan_expr(item.context_expr, mult, amortized)
            self.walk_body(stmt.body, mult, amortized)
            return
        if isinstance(stmt, ast.AnnAssign):
            # The annotation is a type expression, not runtime code.
            if stmt.value is not None:
                self._scan_expr(stmt.value, mult, amortized)
            return
        if isinstance(stmt, ast.Assign):
            # ``a, b = x, y``: parallel unpack -- the RHS tuple is a
            # compiler/freelist idiom, exempt like bare tuple returns.
            unpack = isinstance(stmt.value, ast.Tuple) and any(
                isinstance(t, (ast.Tuple, ast.List)) for t in stmt.targets
            )
            for target in stmt.targets:
                self._scan_expr(target, mult, amortized)
            self._scan_expr(
                stmt.value, mult, amortized, is_unpack=unpack
            )
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, mult, amortized)

    def _note_guarded_returns(self, branch: ast.If) -> None:
        for sub in ast.walk(branch):
            if isinstance(sub, ast.Return):
                if (
                    self.scan.guard_line is None
                    or sub.lineno < self.scan.guard_line
                ):
                    self.scan.guard_line = sub.lineno
                return

    def _returns_mirror(self, value: ast.expr) -> bool:
        """``return self._x`` / ``return memo[...]``: a bare read of the
        incremental mirror is a hit return even without an if."""
        if _is_self_priv(value):
            return True
        if isinstance(value, ast.Subscript) and isinstance(
            value.value, ast.Name
        ):
            return value.value.id in self.memo_names
        return isinstance(value, ast.Name) and value.id in self.memo_names

    def _add_loop_term(
        self, factors: Tuple[str, ...], amortized: bool
    ) -> None:
        _poly_add(self.scan.direct_cost, {factors: 1})
        if amortized:
            _poly_add(self.scan.guarded_cost, {factors: 1})

    # -- expression scan ---------------------------------------------------

    def _scan_expr(
        self,
        expr: ast.expr,
        mult: Tuple[str, ...],
        amortized: bool,
        is_return: bool = False,
        is_unpack: bool = False,
    ) -> None:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                self.scan.call_class.setdefault(
                    sub.lineno, "amortized" if amortized else "per-call"
                )
                self.scan.calls.append((mult, sub))
                self._classify_call(sub, amortized)
            elif isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp,
                                  ast.GeneratorExp)):
                kind = {
                    ast.ListComp: "comprehension",
                    ast.SetComp: "comprehension",
                    ast.DictComp: "comprehension",
                    ast.GeneratorExp: "genexp",
                }[type(sub)]
                self._add_site(kind, sub, ast.unparse(sub)[:60], amortized)
            elif isinstance(sub, ast.List):
                self._add_site("list", sub, ast.unparse(sub)[:60], amortized)
            elif isinstance(sub, ast.Dict):
                self._add_site("dict", sub, ast.unparse(sub)[:60], amortized)
            elif isinstance(sub, ast.Set):
                self._add_site("set", sub, ast.unparse(sub)[:60], amortized)
            elif isinstance(sub, ast.Tuple) and isinstance(
                sub.ctx, ast.Load
            ):
                if all(isinstance(e, ast.Constant) for e in sub.elts):
                    continue  # constant-folded by the compiler
                if (is_return or is_unpack) and sub is expr:
                    self._add_site(
                        "tuple-return" if is_return else "tuple-unpack",
                        sub, ast.unparse(sub)[:60],
                        amortized, certifiable=False,
                    )
                else:
                    self._add_site(
                        "tuple", sub, ast.unparse(sub)[:60], amortized
                    )
            elif isinstance(sub, ast.JoinedStr):
                self._add_site("str-format", sub, "f-string", amortized)
            elif isinstance(sub, ast.Lambda):
                self._add_site("closure", sub, "lambda", amortized)
            elif isinstance(sub, (ast.BinOp, ast.AugAssign)):
                self.scan.boxes += 1

    def _classify_call(self, call: ast.Call, amortized: bool) -> None:
        func = call.func
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            if func.attr == "format":
                self._add_site(
                    "str-format", call, ast.unparse(call)[:60], amortized
                )
            return
        if name is None:
            return
        if name in _CONTAINER_CTORS:
            self._add_site(name, call, ast.unparse(call)[:60], amortized)
        elif self.is_class(name):
            self._add_site(
                "object", call, ast.unparse(call)[:60], amortized
            )

    def _add_site(
        self,
        kind: str,
        node: ast.AST,
        detail: str,
        amortized: bool,
        certifiable: bool = True,
    ) -> None:
        if self.is_init:
            escape = "init-only"
        elif amortized:
            escape = "amortized"
        else:
            escape = "per-call"
        self.scan.sites.append(AllocSite(
            kind=kind,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            detail=detail,
            escape=escape,
            certifiable=certifiable,
        ))


# -- the model ---------------------------------------------------------------


@dataclass
class AllocRecord:
    """One allocation site as reached from a hot root."""

    site: AllocSite
    function: str
    path: str
    #: Site escape class in this root's context (a memo-guarded call
    #: edge amortizes the whole callee subtree).
    effective: str
    #: Call chain root -> ... -> owning function.
    chain: Tuple[str, ...]


@dataclass
class RootCertificate:
    """One hot root's inferred cost and allocation behavior."""

    label: str
    qualname: str
    path: str
    line: int
    worst: Poly
    steady: Poly
    alloc_class: str
    records: List[AllocRecord]
    boxes: int


class CostModel:
    """Interprocedural allocation + cost analysis over one file set."""

    def __init__(self, engine: EffectEngine) -> None:
        self.engine = engine
        self._scans: Dict[str, FunctionScan] = {}
        self._cost_cache: Dict[Tuple[str, bool], Poly] = {}

    # -- per-function ------------------------------------------------------

    def scan(self, qualname: str) -> Optional[FunctionScan]:
        cached = self._scans.get(qualname)
        if cached is not None:
            return cached
        fn = self.engine.table.functions.get(qualname)
        if fn is None:
            return None
        node = fn.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
        params = {
            a.arg
            for a in (
                list(node.args.posonlyargs)
                + list(node.args.args)
                + list(node.args.kwonlyargs)
            )
            if a.arg not in ("self", "cls")
        }
        memo_names = _memo_probe_names(node, params)
        scan = FunctionScan(fn=fn)
        domains = self._loop_domains(fn, node)
        table = self.engine.table

        def is_class(name: str) -> bool:
            return table.resolve_class(name) is not None

        walker = _FunctionWalker(scan, memo_names, domains, is_class)
        walker.walk_body(node.body, (), False)
        _poly_add(scan.direct_cost, _poly_const())
        self._scans[qualname] = scan
        return scan

    def _loop_domains(
        self, fn: FunctionInfo, node: ast.AST
    ) -> Dict[int, str]:
        out: Dict[int, str] = {}
        env = self.engine.table.env_of(fn)
        for sub in ast.walk(node):
            if isinstance(sub, (ast.For, ast.AsyncFor)):
                out[id(sub)] = self._domain_of_iter(fn, sub.iter, env)
            elif isinstance(sub, ast.While):
                out[id(sub)] = self._domain_of_while(fn, sub, node, env)
        return out

    def _domain_of_iter(
        self,
        fn: FunctionInfo,
        expr: ast.expr,
        env: Dict[str, Optional[TypeRef]],
        depth: int = 0,
    ) -> str:
        if depth > 6:
            return "n"
        if isinstance(expr, (ast.Tuple, ast.List)) and all(
            isinstance(e, ast.Constant) for e in expr.elts
        ):
            return ""  # constant trip count
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id == "len":
                    return "n"
                if func.id in _ITER_PASSTHROUGH:
                    if not expr.args:
                        return "n"
                    arg = expr.args[0]
                    if (
                        func.id == "range"
                        and isinstance(arg, ast.Call)
                        and isinstance(arg.func, ast.Name)
                        and arg.func.id == "len"
                        and arg.args
                    ):
                        arg = arg.args[0]
                    if func.id == "range" and isinstance(
                        arg, ast.Constant
                    ):
                        return ""
                    return self._domain_of_iter(fn, arg, env, depth + 1)
                if func.id == "zip" and expr.args:
                    return self._domain_of_iter(
                        fn, expr.args[0], env, depth + 1
                    )
            resolved = self.engine.resolve(fn, expr)
            if resolved is not None:
                short = _short_qual(resolved)
                if short in _ITER_DOMAIN_FUNCS:
                    return _ITER_DOMAIN_FUNCS[short]
            inferred = self.engine.table.infer_expr(expr, env)
            return _domain_of_type(inferred)
        if isinstance(expr, ast.Attribute):
            base = self.engine.table.infer_expr(expr.value, env)
            if base is not None:
                mapped = _ITER_DOMAIN_FIELDS.get((base.name, expr.attr))
                if mapped is not None:
                    return mapped
            inferred = self.engine.table.infer_expr(expr, env)
            return _domain_of_type(inferred)
        if isinstance(expr, ast.Name):
            return _domain_of_type(env.get(expr.id))
        inferred = self.engine.table.infer_expr(expr, env)
        return _domain_of_type(inferred)

    def _domain_of_while(
        self,
        fn: FunctionInfo,
        loop: ast.While,
        fn_node: ast.AST,
        env: Dict[str, Optional[TypeRef]],
    ) -> str:
        """``while i < bound``: chase ``bound = len(X)`` to X's domain."""
        test = loop.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
        ):
            return "n"
        bound = test.comparators[0]
        if isinstance(bound, ast.Name):
            for sub in ast.walk(fn_node):
                if (
                    isinstance(sub, ast.Assign)
                    and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)
                    and sub.targets[0].id == bound.id
                    and isinstance(sub.value, ast.Call)
                    and isinstance(sub.value.func, ast.Name)
                    and sub.value.func.id == "len"
                    and sub.value.args
                ):
                    return self._domain_of_iter(
                        fn, sub.value.args[0], env, 1
                    )
        return "n"

    # -- interprocedural cost ----------------------------------------------

    def cost(
        self,
        qualname: str,
        steady: bool = False,
        _visiting: Optional[Set[str]] = None,
    ) -> Poly:
        """The composed cost polynomial of one function.

        ``steady=True`` drops contributions behind memo guards (the
        steady-state expression: what a hit-path invocation costs).
        """
        key = (qualname, steady)
        cached = self._cost_cache.get(key)
        if cached is not None:
            return cached
        short = _short_qual(qualname)
        axiom = _COST_AXIOMS.get(short)
        if axiom is not None:
            poly = (
                _poly_const() if axiom == "1" else {(axiom,): 1, (): 1}
            )
            self._cost_cache[key] = poly
            return poly
        scan = self.scan(qualname)
        if scan is None:
            return _poly_const()
        visiting = _visiting if _visiting is not None else set()
        if qualname in visiting:
            return {("rec",): 1}
        visiting.add(qualname)
        total: Poly = dict(scan.direct_cost)
        if steady:
            for factors, coeff in scan.guarded_cost.items():
                remaining = total.get(factors, 0) - coeff
                if remaining > 0:
                    total[factors] = remaining
                else:
                    total.pop(factors, None)
            total[()] = max(total.get((), 0), 1)
        for mult, call in scan.calls:
            edge_class = scan.call_class.get(call.lineno, "per-call")
            guard = scan.guard_line
            if guard is not None and call.lineno > guard:
                edge_class = "amortized"
            if steady and edge_class == "amortized":
                continue
            callee = self.engine.resolve(scan.fn, call)
            if callee is None:
                func = call.func
                cname = (
                    func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else ""
                )
                heap_cost = _HEAP_CALL_COSTS.get(cname)
                if heap_cost is not None:
                    _poly_add(total, _poly_scale({(heap_cost,): 1}, mult))
                continue
            callee_fn = self.engine.table.functions.get(callee)
            if callee_fn is not None and (
                callee_fn.module == _SANITIZER_MODULE
            ):
                continue
            sub_cost = self.cost(callee, steady, visiting)
            _poly_add(total, _poly_scale(sub_cost, mult))
        visiting.discard(qualname)
        self._cost_cache[key] = total
        return total

    # -- per-root certification --------------------------------------------

    def certify(
        self,
        label: str,
        qualname: str,
        ignore: Optional[Set[Tuple[str, int]]] = None,
    ) -> Optional[RootCertificate]:
        """Walk one root's closure with guard-aware edges and fold every
        reachable allocation site into a lattice class.

        ``ignore`` is a set of ``(display_path, line)`` pairs whose
        sites are excluded from the class (inline-suppressed churn); the
        records still carry them so the report shows the whole truth.
        """
        fn = self.engine.table.functions.get(qualname)
        if fn is None:
            return None
        # BFS over (function, amortized context); a per-call context
        # dominates an amortized one, so process per-call states first.
        best: Dict[str, bool] = {}
        parent: Dict[str, Tuple[str, ...]] = {qualname: (qualname,)}
        queue: List[Tuple[str, bool]] = [(qualname, False)]
        while queue:
            qual, ctx = queue.pop(0)
            seen = best.get(qual)
            if seen is not None and (seen or not ctx) and seen <= ctx:
                continue
            best[qual] = ctx if seen is None else (seen and ctx)
            scan = self.scan(qual)
            if scan is None:
                continue
            chain = parent.get(qual, (qual,))
            for _mult, call in scan.calls:
                callee = self.engine.resolve(scan.fn, call)
                if callee is None or callee == qual:
                    continue
                callee_fn = self.engine.table.functions.get(callee)
                if callee_fn is None or (
                    callee_fn.module == _SANITIZER_MODULE
                ):
                    continue
                edge = scan.call_class.get(call.lineno, "per-call")
                guard = scan.guard_line
                if guard is not None and call.lineno > guard:
                    edge = "amortized"
                next_ctx = ctx or edge == "amortized"
                if callee not in parent:
                    parent[callee] = chain + (callee,)
                queue.append((callee, next_ctx))
        records: List[AllocRecord] = []
        boxes = 0
        worst_class = "alloc-free"
        for qual in sorted(best):
            ctx = best[qual]
            scan = self.scan(qual)
            if scan is None:
                continue
            boxes += scan.boxes
            for site in scan.sites:
                if site.escape == "init-only":
                    effective = "init-only"
                elif ctx:
                    effective = "amortized"
                else:
                    effective = site.escape
                records.append(AllocRecord(
                    site=site,
                    function=qual,
                    path=scan.fn.display_path,
                    effective=effective,
                    chain=parent.get(qual, (qual,)),
                ))
                if not site.certifiable or effective == "init-only":
                    continue
                if ignore and (scan.fn.display_path, site.line) in ignore:
                    continue
                if effective == "per-call":
                    worst_class = "allocating"
                elif worst_class == "alloc-free":
                    worst_class = "amortized"
        records.sort(key=lambda r: (r.path, r.site.line, r.site.col))
        return RootCertificate(
            label=label,
            qualname=qualname,
            path=fn.display_path,
            line=getattr(fn.node, "lineno", 0),
            worst=self.cost(qualname, steady=False),
            steady=self.cost(qualname, steady=True),
            alloc_class=worst_class,
            records=records,
            boxes=boxes,
        )

    def hot_roots(self) -> Dict[str, str]:
        """label -> qualname for every hot root present in the file set."""
        out: Dict[str, str] = {}
        for label in sorted(HOT_ROOTS):
            cls, name = HOT_ROOTS[label]
            fn = root_function(self.engine, cls, name)
            if fn is not None:
                out[label] = fn.qualname
        return out

    # -- scalar residue ----------------------------------------------------

    def residue(
        self, profile_weights: Optional[Dict[str, float]] = None
    ) -> List[Dict[str, object]]:
        """The ranked scalar residue: functions reachable from the sim
        drivers but not from the vectorized kernels, by static cost x
        bench-profile weight."""
        weights = profile_weights or {}
        sim_quals: List[str] = []
        for label in sorted(SIM_ROOTS):
            cls, name = SIM_ROOTS[label]
            fn = root_function(self.engine, cls, name)
            if fn is not None:
                sim_quals.append(fn.qualname)
        vec_quals = [
            qual for label, qual in self.hot_roots().items()
            if label.startswith("vec-")
        ]
        sim_closure = self.engine.closure(sim_quals)
        vec_closure = self.engine.closure(vec_quals)
        rows: List[Dict[str, object]] = []
        for qual in sorted(sim_closure - vec_closure):
            fn = self.engine.table.functions.get(qual)
            if fn is None or fn.module == _SANITIZER_MODULE or fn.is_init:
                continue
            scan = self.scan(qual)
            if scan is None:
                continue
            poly = self.cost(qual)
            static_cost = scalarize(poly)
            weight = float(weights.get(qual, 1.0))
            per_call = sum(
                1 for s in scan.sites
                if s.certifiable and s.escape == "per-call"
            )
            rows.append({
                "function": qual,
                "path": fn.display_path,
                "line": getattr(fn.node, "lineno", 0),
                "cost": render_poly(poly),
                "static_cost": static_cost,
                "profile_weight": weight,
                "score": round(static_cost * weight, 3),
                "per_call_sites": per_call,
            })
        rows.sort(
            key=lambda r: (-float(str(r["score"])), str(r["function"]))
        )
        for rank, row in enumerate(rows, 1):
            row["rank"] = rank
        return rows


def _short_qual(qualname: str) -> str:
    """``module.Class.method`` -> ``Class.method`` (``module.fn`` ->
    ``fn``): the key space of the axiom/domain tables."""
    parts = qualname.split(".")
    for index, part in enumerate(parts):
        if part[:1].isupper() or part.startswith("_") and part[1:2].isupper():
            return ".".join(parts[index:])
    return parts[-1]


def _domain_of_type(ref: Optional[TypeRef]) -> str:
    if ref is None:
        return "n"
    if ref.elem is not None and ref.elem.name in _ELEM_DOMAINS:
        return _ELEM_DOMAINS[ref.elem.name]
    if ref.name in _ELEM_DOMAINS:
        return _ELEM_DOMAINS[ref.name]
    return "n"


def _poly_terms(poly: Poly) -> List[List[str]]:
    return [list(t) for t in sorted(poly, key=lambda t: (-len(t), t))]


def cost_report(
    engine: EffectEngine,
    baseline: Optional[Dict[str, object]] = None,
    declared: Optional[Dict[str, str]] = None,
) -> Dict[str, object]:
    """The machine-readable ``repro lint --cost-report`` document.

    Pure function of the analyzed trees (plus the committed baseline's
    profile weights): identical under every vec backend and shard count.
    """
    model = CostModel(engine)
    if declared is None:
        from repro.sched.allocdecl import DECLARED_ALLOC

        declared = dict(DECLARED_ALLOC)
    weights: Dict[str, float] = {}
    if baseline is not None:
        raw = baseline.get("profile_weights")
        if isinstance(raw, dict):
            weights = {str(k): float(v) for k, v in raw.items()}
    roots: Dict[str, object] = {}
    per_call_total = 0
    for label, qual in sorted(model.hot_roots().items()):
        cert = model.certify(label, qual)
        if cert is None:
            continue
        sites = []
        for record in cert.records:
            if record.site.escape == "init-only":
                continue
            sites.append({
                "kind": record.site.kind,
                "path": record.path,
                "line": record.site.line,
                "function": record.function,
                "escape": record.effective,
                "certifiable": record.site.certifiable,
                "detail": record.site.detail,
                "chain": list(record.chain),
            })
            if record.site.certifiable and record.effective == "per-call":
                per_call_total += 1
        roots[label] = {
            "function": cert.qualname,
            "path": cert.path,
            "line": cert.line,
            "declared": declared.get(label),
            "inferred": cert.alloc_class,
            "cost": {
                "worst": render_poly(cert.worst),
                "steady": render_poly(cert.steady),
                "worst_terms": _poly_terms(cert.worst),
                "steady_terms": _poly_terms(cert.steady),
            },
            "boxes": cert.boxes,
            "allocation_sites": sites,
        }
    residue = model.residue(weights)
    return {
        "version": COST_REPORT_VERSION,
        "tool": "repro-lint/cost-model",
        "domain_sizes": dict(sorted(DOMAIN_SIZES.items())),
        "roots": roots,
        "scalar_residue": residue,
        "summary": {
            "roots": len(roots),
            "per_call_sites": per_call_total,
            "residue_functions": len(residue),
        },
    }

"""SARIF 2.1.0 export for ``repro lint`` findings.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what CI systems and code-scanning UIs ingest; emitting it makes the
offline checker a first-class producer next to commercial analyzers.
The document here is deliberately minimal-but-valid: one run, one tool
driver with per-rule metadata, one result per finding with a physical
location, and SARIF-native ``suppressions`` entries for findings excused
by an inline ``# repro: noqa[...]`` directive (``kind: inSource``) or by
the committed JSON baseline (``kind: external``).

Fingerprints go under ``partialFingerprints`` so SARIF consumers track a
finding across commits exactly as the baseline file does (both use the
line-number-independent :meth:`Finding.fingerprint`).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.core import Finding, Rule

#: Spec pin; consumers dispatch on this pair.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Finding severities map 1:1 onto SARIF levels.
_LEVELS = ("error", "warning", "note")

#: Rule ids the framework itself can emit without a Rule instance.
_SYNTHETIC_RULES = {
    "parse-error": "the file could not be read or parsed",
    "coherence-unguarded-dependency": (
        "a cached accessor depends on a field outside the coherence "
        "contract"
    ),
}


def _tool_version() -> str:
    try:
        from repro import __version__

        return str(__version__)
    except Exception:  # pragma: no cover - version is always present
        return "0"


def to_sarif(
    findings: Sequence[Finding],
    rules: Iterable[Rule] = (),
    baseline_fingerprints: Optional[Set[str]] = None,
) -> Dict[str, object]:
    """The findings as a SARIF 2.1.0 ``log`` object (JSON-ready).

    ``rules`` provides driver metadata (descriptions); rule ids that
    appear only in findings are synthesized so every result's
    ``ruleIndex`` resolves.  ``baseline_fingerprints`` marks the
    grandfathered findings as externally suppressed.
    """
    descriptions: Dict[str, str] = dict(_SYNTHETIC_RULES)
    for rule in rules:
        if rule.rule_id:
            descriptions[rule.rule_id] = rule.description
    for finding in findings:
        descriptions.setdefault(finding.rule_id, "")

    rule_ids = sorted(
        {f.rule_id for f in findings} | {r for r in descriptions if r}
    )
    index_of = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    driver_rules: List[Dict[str, object]] = [
        {
            "id": rule_id,
            "shortDescription": {"text": descriptions.get(rule_id) or rule_id},
        }
        for rule_id in rule_ids
    ]

    baseline = baseline_fingerprints or set()
    results: List[Dict[str, object]] = []
    for finding in findings:
        level = (
            finding.severity if finding.severity in _LEVELS else "warning"
        )
        result: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "ruleIndex": index_of[finding.rule_id],
            "level": level,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": max(finding.col + 1, 1),
                        },
                    }
                }
            ],
            "partialFingerprints": {
                "reproLintFingerprint/v1": finding.fingerprint()
            },
        }
        suppressions: List[Dict[str, object]] = []
        if finding.suppressed:
            suppressions.append({
                "kind": "inSource",
                "justification": "# repro: noqa directive on the line",
            })
        if finding.fingerprint() in baseline:
            suppressions.append({
                "kind": "external",
                "justification": "grandfathered by lint-baseline.json",
            })
        if suppressions:
            result["suppressions"] = suppressions
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/paper-repro/"
                            "wasted-cores-sim"
                        ),
                        "version": _tool_version(),
                        "rules": driver_rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding],
    rules: Iterable[Rule] = (),
    baseline_fingerprints: Optional[Set[str]] = None,
) -> str:
    return json.dumps(
        to_sarif(findings, rules, baseline_fingerprints),
        indent=2,
        sort_keys=True,
    )

"""Vectorization-safety certification for the fast-path read closure.

The ROADMAP's north-star -- a vectorized, array-backed simulation core --
is exactly the kind of aggressive rewrite the paper warns about: batching
and reordering the hot loops is only sound if every function they reach
is *effect-bounded*.  This rule certifies that, statically, today --
before the rewrite exists -- so the transformation has a machine-checked
list of what it may touch.

``pure-hot-path`` (severity: error)
    Every function reachable (via calls and property accesses) from the
    :data:`~repro.analysis.effects.HOT_ROOTS` -- the accessors
    ``SchedFeatures.with_fastpath`` memoizes: the runqueue load memo,
    the balance-pass sample/fold/election memos, the event-loop pending
    counter -- must classify as

    * **pure** (reads only), or
    * **bounded** (writes confined to the receiver's own state: memo
      cells, dirty counters, incremental mirrors -- state a batched
      rewrite must preserve but that nothing outside the object can
      observe mid-flight).

    A function with **escaping** effects -- foreign-object writes,
    module-global mutation, nondeterminism sources, I/O -- is reported:
    batching or reordering its callers would change observable behavior.
    One narrow idiom is recognized as bounded rather than escaping:
    ``id(x)`` / ``hash(x)`` used *directly* as a private memo key
    (subscript index or ``.get``/``.pop``/``.setdefault`` argument) --
    the identity value never escapes the lookup, interning keeps it
    stable within a pass, and the memo's values are what flow onward.

The same classification feeds :func:`repro.analysis.effects.`
``vectorization_report`` -- the machine-readable JSON artifact
(``repro lint --effects-report``) naming exactly which functions the
numpy/batched rewrite may transform (``safe``) and which it must not
touch (``unsafe``, with per-line reasons).  After :meth:`finalize` the
rule instance exposes that report as :attr:`report`, which the runner
writes to disk; the findings themselves travel in the normal SARIF
export.  The runtime counterpart (:mod:`repro.analysis.effectcheck`)
cross-checks the underlying write summaries against observed attribute
mutations during the bug demos.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import FileContext, Finding, Rule
from repro.analysis.effects import (
    EffectEngine,
    HOT_ROOTS,
    classify_function,
    root_function,
    vectorization_report,
)

#: How many reasons one finding spells out before eliding the rest.
_MAX_REASONS = 3


class PureHotPathRule(Rule):
    """Certify the fast-path closure as pure/bounded; flag escapes."""

    rule_id = "pure-hot-path"
    description = (
        "functions reachable from the with_fastpath hot loops must be "
        "effect-bounded (pure, or self-writes only) so the vectorized "
        "core rewrite can batch and reorder them"
    )
    scope: Tuple[str, ...] = ("repro.sched", "repro.sim", "repro.core")
    cross_file = True

    def __init__(self) -> None:
        self._files: List[Tuple[str, str, ast.Module]] = []
        self._lines: Dict[str, List[str]] = {}
        #: The vectorization-safety report, populated by finalize() and
        #: consumed by the runner's ``--effects-report`` writer.
        self.report: Optional[Dict[str, object]] = None

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        self._files.append((ctx.module, ctx.display_path, ctx.tree))
        self._lines[ctx.display_path] = ctx.lines
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        if not self._files:
            return
        engine = EffectEngine(self._files)
        self.report = vectorization_report(engine)
        roots: Dict[str, str] = {}
        for label in sorted(HOT_ROOTS):
            cls, name = HOT_ROOTS[label]
            fn = root_function(engine, cls, name)
            if fn is not None:
                roots[fn.qualname] = label
        if not roots:
            return  # partial tree (fixtures without any hot root)
        # Which root(s) reach each member: reported so a finding names
        # the hot loop it would poison, not just the leaf function.
        reached_by: Dict[str, Set[str]] = {}
        for root_qual, label in sorted(roots.items()):
            for member in engine.closure([root_qual]):
                reached_by.setdefault(member, set()).add(label)
        for member in sorted(reached_by):
            category, reasons = classify_function(engine, member)
            if category != "escaping":
                continue
            summary = engine.summaries.get(member)
            if summary is None:
                continue
            line = getattr(summary.fn.node, "lineno", 0)
            lines = self._lines.get(summary.fn.display_path, [])
            snippet = (
                lines[line - 1].strip() if 1 <= line <= len(lines) else ""
            )
            shown = reasons[:_MAX_REASONS]
            more = len(reasons) - len(shown)
            detail = "; ".join(shown) + (
                f"; (+{more} more)" if more > 0 else ""
            )
            via = ", ".join(sorted(reached_by[member]))
            yield Finding(
                rule_id=self.rule_id,
                path=summary.fn.display_path,
                line=line,
                col=0,
                message=(
                    f"{summary.fn.qualname} is reachable from fast-path "
                    f"hot loop(s) [{via}] but has escaping effects: "
                    f"{detail} -- the vectorized rewrite cannot batch "
                    "through it; make the effect self-confined or lift "
                    "it out of the hot closure (suppress with "
                    "'# repro: noqa[pure-hot-path]' only with a comment "
                    "proving the effect is replay-invariant)"
                ),
                snippet=snippet,
                severity="error",
            )

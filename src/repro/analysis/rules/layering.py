"""Layering rules: the import contracts between subsystems.

The ``Scheduler`` docstring promises the scheduler is *simulation-agnostic*
("it never touches the event loop"), which in import terms means
``repro.sched`` must never import ``repro.sim``.  Likewise the scheduler
reports events through the :class:`repro.viz.events.Probe` protocol and the
obs bus listens via :class:`repro.obs.bridge.ProbeTracepointBridge` -- so
``repro.sched`` must not import ``repro.obs`` directly either; the bridge
(which lives on the obs side) is the only coupling point.  A third rule
keeps ``repro.obs`` from importing scheduler internals, which would create
cycles with ``repro.sim.engine`` (a bus producer).

Violations here are how "just one constant" imports quietly invert a
dependency: before this checker existed, ``repro.sched.features`` and
``repro.sched.runqueue`` imported ``repro.sim.timebase`` for tunables --
exactly the regression class these rules now stop in CI.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.core import FileContext, Finding, Rule


class LayeringRule(Rule):
    """Forbid imports of ``forbidden`` from modules under ``source``."""

    def __init__(
        self,
        rule_id: str,
        source: str,
        forbidden: str,
        rationale: str,
        exempt: Tuple[str, ...] = (),
    ):
        self.rule_id = rule_id
        self.description = f"{source} must not import {forbidden}"
        self.scope = (source,)
        self.forbidden = forbidden
        self.rationale = rationale
        self.exempt = exempt

    def _is_forbidden(self, module: Optional[str]) -> bool:
        if module is None:
            return False
        return module == self.forbidden or module.startswith(
            self.forbidden + "."
        )

    def _resolve_relative(self, ctx: FileContext, node: ast.ImportFrom) -> str:
        """Absolute dotted target of a relative import, best effort."""
        parts = ctx.module.split(".")
        # level=1 is the containing package of a plain module.
        base = parts[: max(len(parts) - node.level, 0)]
        if node.module:
            base.append(node.module)
        return ".".join(base)

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module in self.exempt:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._is_forbidden(alias.name):
                        yield ctx.finding(
                            self.rule_id,
                            node,
                            f"{ctx.module} imports {alias.name}: "
                            f"{self.rationale}",
                        )
            elif isinstance(node, ast.ImportFrom):
                target = (
                    self._resolve_relative(ctx, node)
                    if node.level
                    else node.module
                )
                if self._is_forbidden(target):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"{ctx.module} imports {target}: {self.rationale}",
                    )


def layering_rules() -> List[LayeringRule]:
    """The layering contract of this codebase, as rule instances."""
    return [
        LayeringRule(
            rule_id="layer-sched-sim",
            source="repro.sched",
            forbidden="repro.sim",
            rationale=(
                "the scheduler is simulation-agnostic (Scheduler "
                "docstring); scheduler-side constants belong in "
                "repro.sched.timebase"
            ),
        ),
        LayeringRule(
            rule_id="layer-sched-obs",
            source="repro.sched",
            forbidden="repro.obs",
            rationale=(
                "the scheduler reports through the Probe protocol only; "
                "obs listens via ProbeTracepointBridge, never the reverse"
            ),
        ),
        LayeringRule(
            rule_id="layer-obs-sched",
            source="repro.obs",
            forbidden="repro.sched",
            rationale=(
                "obs is a pure consumer of Probe hooks and tracepoints; "
                "importing scheduler internals would cycle through "
                "repro.sim.engine"
            ),
        ),
    ]

"""Scenario-registry rule: SLO spec files must reference real code.

The ``repro.slo`` registry is deliberately declarative -- a scenario TOML
names its trial function, workload factories, topology preset, and
tracepoints as *strings*.  Nothing imports those strings until the
orchestrator resolves them inside a pool worker, so a typo
(``repro.slo.trial:hogg``, a renamed tracepoint, a deleted topology
preset) survives every static import check and only explodes at run
time, deep inside ``repro slo run``.

This rule closes that gap offline: it loads every scenario file (the
shipped registry by default; tests inject fixture paths) and verifies

* the file parses and passes :func:`repro.slo.registry.load_scenario`'s
  structural validation (including SLO threshold names);
* the ``trial`` kind and every ``[[scenario.workload]]`` ``spec`` resolve
  to an importable ``module:function``;
* ``topology`` names a preset in :data:`repro.slo.trial.TOPOLOGIES`;
* every listed tracepoint is declared in
  :data:`repro.obs.tracepoints.TRACEPOINT_NAMES`.

Unlike the AST rules, the inputs are TOML, not Python, so everything
happens in :meth:`Rule.finalize` -- the rule visits no source files and
findings point into the scenario file itself (best-effort line match on
the offending token).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.core import Finding, Rule


def _resolvable(ref: str) -> Optional[str]:
    """Why ``module:function`` does not resolve (None when it does)."""
    module_name, _, attr = ref.partition(":")
    try:
        import importlib

        module = importlib.import_module(module_name)
    except Exception as exc:  # ImportError, or a broken module body
        return f"cannot import module {module_name!r}: {exc}"
    if not hasattr(module, attr):
        return f"module {module_name!r} has no attribute {attr!r}"
    if not callable(getattr(module, attr)):
        return f"{ref!r} resolves to a non-callable"
    return None


def _display(path: Path) -> str:
    resolved = path.resolve()
    try:
        return resolved.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


def _line_of(lines: Sequence[str], token: str) -> int:
    """1-based line of the first occurrence of ``token`` (0 when absent)."""
    for lineno, text in enumerate(lines, start=1):
        if token in text:
            return lineno
    return 0


class SloRegistryRule(Rule):
    """Validate SLO scenario TOML files against the code they reference."""

    rule_id = "slo-registry"
    description = (
        "scenario-registry specs must reference resolvable module:function "
        "trial/workload kinds, known topology presets, and declared "
        "tracepoint names"
    )
    #: TOML inputs, not Python -- the rule never visits source files.
    scope: Optional[Tuple[str, ...]] = ()
    #: Finalize-driven (TOML side inputs): runs in the parent, never in
    #: a worker shard, so the report stays identical at any job count.
    cross_file = True

    def __init__(self, spec_paths: Optional[Sequence[object]] = None):
        #: None means "the shipped registry", resolved lazily so tests
        #: that inject fixture paths never touch the package data.
        self._spec_paths = (
            [Path(str(p)) for p in spec_paths]
            if spec_paths is not None
            else None
        )

    def wants(self, module: str) -> bool:
        return False

    def finalize(self) -> Iterable[Finding]:
        if self._spec_paths is not None:
            paths = list(self._spec_paths)
        else:
            from repro.slo.registry import shipped_scenario_paths

            paths = shipped_scenario_paths()
        findings: List[Finding] = []
        for path in paths:
            findings.extend(self._check_file(path))
        return findings

    def _finding(
        self, path: Path, lines: Sequence[str], token: str, message: str
    ) -> Finding:
        lineno = _line_of(lines, token)
        return Finding(
            rule_id=self.rule_id,
            path=_display(path),
            line=lineno,
            col=0,
            message=message,
            snippet=lines[lineno - 1].strip() if lineno else "",
        )

    def _check_file(self, path: Path) -> Iterator[Finding]:
        from repro.obs.tracepoints import TRACEPOINT_NAMES
        from repro.slo.registry import load_scenario
        from repro.slo.trial import TOPOLOGIES

        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            yield Finding(
                rule_id=self.rule_id,
                path=_display(path),
                line=0,
                col=0,
                message=f"cannot read scenario file: {exc}",
            )
            return
        try:
            scenario = load_scenario(path)
        except ValueError as exc:
            # load_scenario prefixes messages with the path; strip it so
            # the finding (which already carries the path) stays terse.
            message = str(exc)
            prefix = f"{path}: "
            if message.startswith(prefix):
                message = message[len(prefix):]
            yield Finding(
                rule_id=self.rule_id,
                path=_display(path),
                line=0,
                col=0,
                message=f"invalid scenario spec: {message}",
            )
            return

        refs = [("trial", scenario.trial)]
        refs.extend(
            ("workload spec", entry.spec) for entry in scenario.workloads
        )
        for label, ref in refs:
            problem = _resolvable(ref)
            if problem is not None:
                yield self._finding(
                    path, lines, ref,
                    f"{label} {ref!r} does not resolve: {problem}",
                )
        if scenario.topology is not None and scenario.topology not in TOPOLOGIES:
            yield self._finding(
                path, lines, scenario.topology,
                f"unknown topology preset {scenario.topology!r} "
                f"(known: {', '.join(sorted(TOPOLOGIES))})",
            )
        for name in scenario.tracepoints:
            if name not in TRACEPOINT_NAMES:
                yield self._finding(
                    path, lines, name,
                    f"tracepoint {name!r} is not declared in "
                    "repro.obs.tracepoints.TRACEPOINT_NAMES",
                )

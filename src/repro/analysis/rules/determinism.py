"""Determinism sanitizer: every experiment promises bit-identical reruns.

The simulator's contract (see ``repro.sim.system``: "Everything is
deterministic for a fixed seed") is what makes the Table/Figure
reproductions trustworthy and the same-seed trace-equality regression test
possible.  Three rules guard it:

* ``det-unseeded-random`` -- module-level ``random.*`` calls draw from the
  interpreter-global generator, whose state depends on import order and on
  every other caller.  All randomness must flow from a ``random.Random(seed)``
  instance owned by the workload or the system.
* ``det-wallclock`` -- ``time.time()`` / ``datetime.now()`` and friends leak
  host wall-clock into simulated state.  Scoped to the simulation hot paths
  (``repro.sched``, ``repro.sim``, ``repro.core``); benchmarking code in
  ``repro.experiments`` legitimately measures real time.
* ``det-set-iteration`` -- iterating a ``set``/``frozenset`` has no
  guaranteed order: string hashing is salted per process (PYTHONHASHSEED)
  and object hashes depend on allocation addresses, so draining
  ``pending_dispatch``-style state unsorted reorders scheduling decisions
  between runs.  Order-insensitive reductions (``sum``, ``min``, ``max``,
  ``any``, ``all``, ``len``, ``sorted``, set construction) are allowed;
  everything else must sort first.

Set-typedness is static and deliberately conservative: an expression is
set-typed when it is a set display/comprehension, a ``set()``/``frozenset()``
call, a name annotated as a set in the same file, or an attribute whose
annotation -- anywhere in the analyzed project -- is a set type *and* no
other class annotates an attribute of the same name with a non-set type
(ambiguous attribute names are skipped rather than guessed).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import FileContext, Finding, Rule
from repro.analysis.effects import (
    ORDER_FREE_CONSUMERS,
    ORDER_KEEPING_CALLS,
    RNG_ALLOWED,
    SET_METHODS,
    SET_TYPE_NAMES,
    WALL_CALLS,
    WALL_IMPORTS,
)

#: Module prefixes whose behavior feeds simulated state.
HOT_SCOPE = ("repro.sched", "repro.sim", "repro.core")


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class UnseededRandomRule(Rule):
    """Flag draws from the process-global ``random`` generator."""

    rule_id = "det-unseeded-random"
    description = (
        "module-level random.* calls are unseeded; use a "
        "random.Random(seed) instance owned by the workload/system"
    )
    scope: Optional[Tuple[str, ...]] = None  # the whole tree must reproduce

    #: Constructors of private generators -- the approved idiom.  Shared
    #: with the whole-program taint rule (one source vocabulary: see
    #: ``repro.analysis.effects``) so the two can never drift apart.
    _ALLOWED = RNG_ALLOWED

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and func.attr not in self._ALLOWED
                ):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"call to unseeded random.{func.attr}(); draw from "
                        "a random.Random(seed) instance instead",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [
                    alias.name
                    for alias in node.names
                    if alias.name not in self._ALLOWED
                ]
                if bad:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        "importing module-level generator function(s) "
                        f"{', '.join(sorted(bad))} from random; import "
                        "random.Random and seed it explicitly",
                    )


class WallClockRule(Rule):
    """Flag host wall-clock reads inside the simulation hot paths."""

    rule_id = "det-wallclock"
    description = (
        "wall-clock calls in sched/sim/core leak host time into "
        "simulated state; use the event loop's virtual 'now'"
    )
    scope = HOT_SCOPE

    #: Shared with the effect engine / taint rule (one wall-clock list).
    _WALL_CALLS = WALL_CALLS
    _WALL_IMPORTS = WALL_IMPORTS

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted in self._WALL_CALLS:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"wall-clock call {dotted}() in a simulation hot "
                        "path; pass the simulated 'now' instead",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [
                    alias.name
                    for alias in node.names
                    if alias.name in self._WALL_IMPORTS
                ]
                if bad:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"importing wall-clock source(s) "
                        f"{', '.join(sorted(bad))} from time in a "
                        "simulation hot path",
                    )


#: The shared set/order vocabulary lives in ``repro.analysis.effects``;
#: the local aliases keep this module's historical names working.  The
#: whole-program taint rule consumes the same frozensets, so what this
#: rule treats as provably ordered, the taint rule sanitizes -- and vice
#: versa.
_SET_ANNOTATIONS = SET_TYPE_NAMES
_SET_METHODS = SET_METHODS
_ORDER_FREE_CONSUMERS = ORDER_FREE_CONSUMERS
_ORDER_KEEPING_CALLS = ORDER_KEEPING_CALLS


def _annotation_kind(annotation: Optional[ast.AST]) -> Optional[str]:
    """"set" / "other" for an annotation expression, None if unreadable."""
    if annotation is None:
        return None
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: look at the leading identifier.
        head = node.value.split("[", 1)[0].strip().rsplit(".", 1)[-1]
        return "set" if head in _SET_ANNOTATIONS else "other"
    name = _dotted(node)
    if name is None:
        return None
    return "set" if name.rsplit(".", 1)[-1] in _SET_ANNOTATIONS else "other"


@dataclass
class _AttrCandidate:
    """An iteration over ``x.attr`` awaiting project-wide disambiguation."""

    attr: str
    finding: Finding


class SetIterationRule(Rule):
    """Flag order-sensitive iteration over set-typed values."""

    rule_id = "det-set-iteration"
    description = (
        "iterating a set has no deterministic order; wrap in sorted() "
        "or use an ordered container"
    )
    scope = HOT_SCOPE
    cross_file = True  # attr disambiguation needs project-wide annotations

    def __init__(self) -> None:
        #: attr name -> kinds seen anywhere in the project ("set"/"other").
        self._attr_kinds: Dict[str, Set[str]] = {}
        self._candidates: List[_AttrCandidate] = []

    # -- annotation collection ------------------------------------------------

    def _collect_annotations(self, ctx: FileContext) -> Dict[str, str]:
        """File-local name -> kind; also feeds the project attribute map.

        Class-body annotations (dataclass fields, slots declarations) are
        *attribute* declarations and only feed the project-wide attribute
        map; module/function-level annotations and parameter annotations
        only feed the file-local name map.
        """
        local: Dict[str, Set[str]] = {}
        class_fields = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        class_fields.add(stmt)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AnnAssign):
                kind = _annotation_kind(node.annotation)
                if kind is None:
                    continue
                target = node.target
                if isinstance(target, ast.Name):
                    if node in class_fields:
                        self._attr_kinds.setdefault(
                            target.id, set()
                        ).add(kind)
                    else:
                        local.setdefault(target.id, set()).add(kind)
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self._attr_kinds.setdefault(target.attr, set()).add(kind)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = list(node.args.args) + list(node.args.kwonlyargs)
                for arg in args:
                    kind = _annotation_kind(arg.annotation)
                    if kind is not None:
                        local.setdefault(arg.arg, set()).add(kind)
        # A name annotated inconsistently within one file is ambiguous.
        return {
            name: "set"
            for name, kinds in local.items()
            if kinds == {"set"}
        }

    # -- set-typedness --------------------------------------------------------

    def _is_set_expr(self, node: ast.AST, local: Dict[str, str]) -> bool:
        """True when ``node`` is *immediately* known to be a set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                # x.union(y) etc. -- set algebra yields sets.  Guarded to
                # receivers that are themselves set-typed to avoid str.copy
                # style false positives.
                return self._is_set_expr(func.value, local) or (
                    func.attr != "copy"
                )
            return False
        if isinstance(node, ast.Name):
            return local.get(node.id) == "set"
        return False

    def _attr_name(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    # -- iteration sites ------------------------------------------------------

    def _iteration_sites(
        self, ctx: FileContext
    ) -> Iterator[Tuple[ast.AST, ast.AST, str]]:
        """(iterable-expr, anchor-node, how) for every order-sensitive use."""
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.iter, node, "for-loop"
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                consumer = parents.get(node)
                if (
                    isinstance(node, (ast.GeneratorExp, ast.ListComp))
                    and isinstance(consumer, ast.Call)
                    and isinstance(consumer.func, ast.Name)
                    and consumer.func.id in _ORDER_FREE_CONSUMERS
                    and len(consumer.args) >= 1
                    and consumer.args[0] is node
                ):
                    # sum(x for x in s), sorted(x for x in s), ... -- the
                    # reduction erases iteration order.
                    continue
                if isinstance(node, ast.SetComp):
                    # The comprehension's own output is a set again; order
                    # only matters where *that* set is iterated.
                    continue
                for gen in node.generators:
                    yield gen.iter, node, "comprehension"
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_KEEPING_CALLS
                    and node.args
                ):
                    consumer = parents.get(node)
                    if (
                        isinstance(consumer, ast.Call)
                        and isinstance(consumer.func, ast.Name)
                        and consumer.func.id in _ORDER_FREE_CONSUMERS
                        and len(consumer.args) >= 1
                        and consumer.args[0] is node
                    ):
                        # ``sorted(list(s))``, ``sum(tuple(s))`` -- the
                        # order-keeping wrapper feeds straight into an
                        # order-free consumer, so the laundered order
                        # never escapes.  Same sanitizer the taint rule
                        # applies (shared ORDER_FREE_CONSUMERS list).
                        continue
                    yield node.args[0], node, f"{func.id}()"

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        local = self._collect_annotations(ctx)
        for iterable, anchor, how in self._iteration_sites(ctx):
            if self._is_set_expr(iterable, local):
                yield ctx.finding(
                    self.rule_id,
                    anchor,
                    f"{how} iterates a set-typed value; iteration order is "
                    "not deterministic -- wrap in sorted(...)",
                )
                continue
            attr = self._attr_name(iterable)
            if attr is not None and not attr.startswith("__"):
                self._candidates.append(
                    _AttrCandidate(
                        attr=attr,
                        finding=ctx.finding(
                            self.rule_id,
                            anchor,
                            f"{how} iterates '.{attr}', which is annotated "
                            "as a set; iteration order is not deterministic "
                            "-- wrap in sorted(...)",
                        ),
                    )
                )

    def finalize(self) -> Iterator[Finding]:
        for candidate in self._candidates:
            kinds = self._attr_kinds.get(candidate.attr)
            # Only report when every annotation of this attribute name in
            # the project is a set type: ambiguous names are skipped rather
            # than guessed (GroupStats.cpus is a Tuple, SchedGroup.cpus a
            # FrozenSet -- neither should be flagged by name alone).
            if kinds == {"set"}:
                yield candidate.finding

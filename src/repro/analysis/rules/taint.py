"""Whole-program nondeterminism taint: sources must never reach digests.

The repository's reproducibility story rests on a handful of *witness*
values: schedule digests (the serial-vs-parallel equivalence proof),
trace event streams (the replay differ), metric counters (the SLO
verdicts), and ``TrialSpec`` fingerprints (the result cache key).  The
legacy determinism rules (:mod:`repro.analysis.rules.determinism`) flag
nondeterminism *sources* syntactically, one file at a time; this rule
flags the flows that actually corrupt a witness -- a wall-clock read in
``experiments`` is fine until the value it produced reaches a digest
three calls later in another module.

``determinism-taint`` (severity: error)
    Interprocedural taint from nondeterminism sources to
    digest/trace-affecting sinks, over the
    :class:`~repro.analysis.effects.EffectEngine` call graph.

    Sources (kinds in brackets):
      * unseeded ``random.*`` draws [rng];
      * ``time.time``/``perf_counter``/``datetime.now`` & co [wallclock];
      * ``os.environ`` / ``os.getenv`` reads [env];
      * ``id()`` / ``hash()`` values [idhash];
      * pool completion order -- ``imap_unordered``, ``as_completed``
        [pool-order];
      * iterating a set-typed value [set-order].

    Sinks (type-aware: receivers are resolved through the symbol table):
      * ``Tracepoint.emit(...)`` arguments;
      * ``Counter.inc`` / ``Gauge.set`` / ``Histogram.observe``;
      * any project function or method whose bare name contains
        ``digest`` (``schedule_digest``, ``hexdigest``, ...) -- via its
        arguments or its receiver chain;
      * the ``TrialSpec`` constructor (its fields feed the cache
        fingerprint).

    Sanitizers (how a tainted value becomes clean):
      * an order-free consumer (``sorted``, ``sum``, ``min``, ``max``,
        ``any``, ``all``, ``len``, ``set``, ``frozenset``) erases the
        order kinds [set-order, pool-order] -- value kinds survive, a
        sorted list of wall-clock stamps is still wall-clock data;
      * a seeded generator is never a source: only module-level
        ``random.*`` draws taint, ``random.Random(seed)`` instances are
        the approved idiom and stay clean;
      * :data:`~repro.analysis.effects.SPEC_ORDER_MERGERS` (``run_pool``)
        strip [pool-order] from their return value -- the parent merges
        worker results back into spec order by index, and the CI
        j1-vs-jN byte-equality gate is the standing proof;
      * the ``TrialSpec`` constructor itself *records* [env] taint
        rather than hiding it: an env-derived field (``REPRO_SCALE`` ->
        ``scale``) is hashed into the fingerprint, so the cache stays
        correct and reruns with the recorded spec reproduce -- env taint
        is therefore reported at the opaque sinks (emit/metrics/digest)
        but not at spec capture.

Taint propagates through locals (flow-insensitively, like the symbol
table's own environments), through resolvable project calls (return
values and parameters, to a fixpoint), and through arithmetic/formatting
expressions.  It deliberately does NOT flow through object fields or
container lookups by key: a value stored in an attribute and re-read
elsewhere is outside this rule's reach -- the runtime effect sanitizer
(:mod:`repro.analysis.effectcheck`) is the dynamic backstop on that
boundary, mirroring how PR 4 pairs the coherence rule with the memo
sanitizer.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import FileContext, Finding, Rule
from repro.analysis.effects import (
    EffectEngine,
    ORDER_FREE_CONSUMERS,
    ORDER_KEEPING_CALLS,
    ORDER_KINDS,
    RNG_ALLOWED,
    SOURCE_KINDS,
    SPEC_ORDER_MERGERS,
    WALL_CALLS,
    WALL_IMPORTS,
    dotted_name,
)
from repro.analysis.symbols import FunctionInfo, TypeRef

#: A taint element: a concrete source kind (str) or a symbolic parameter
#: marker ``("param", name)`` standing for "whatever the caller passes".
TaintItem = object
Taint = FrozenSet[TaintItem]

_EMPTY: Taint = frozenset()

#: Metric mutators and the receiver class each belongs to.
METRIC_SINKS = {"inc": "Counter", "set": "Gauge", "observe": "Histogram"}

#: Receiver class of the tracepoint sink.
TRACEPOINT_CLASS = "Tracepoint"

#: Constructor sink whose fields feed cache fingerprints.
SPEC_CLASS = "TrialSpec"

#: Kinds each sink cares about.  ``TrialSpec`` capture *records* env
#: taint into the fingerprint (see module docstring) so env is exempt
#: there and only there.
_ALL_KINDS: FrozenSet[str] = frozenset(SOURCE_KINDS)
_SPEC_KINDS: FrozenSet[str] = _ALL_KINDS - {"env"}


def _concrete(taint: Taint) -> FrozenSet[str]:
    return frozenset(t for t in taint if isinstance(t, str))


def _symbolic(taint: Taint) -> FrozenSet[Tuple[str, str]]:
    return frozenset(
        t for t in taint  # type: ignore[misc]
        if isinstance(t, tuple) and t and t[0] == "param"
    )


def _strip_order(taint: Taint) -> Taint:
    return frozenset(t for t in taint if t not in ORDER_KINDS)


def _param_names(fn: FunctionInfo) -> List[str]:
    """Positional parameter names, ``self``/``cls`` excluded for methods."""
    node = fn.node
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    names = [
        a.arg
        for a in list(node.args.posonlyargs) + list(node.args.args)
    ]
    if fn.cls is not None and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


class TaintAnalysis:
    """Return-taint and param-sink fixpoints over one effect engine."""

    #: Bound on global fixpoint sweeps (monotone lattices converge long
    #: before this; the cap guards pathological inputs).
    MAX_SWEEPS = 12

    def __init__(self, engine: EffectEngine):
        self.engine = engine
        self.table = engine.table
        #: qualname -> taint carried by the function's return value.
        self.returns: Dict[str, Taint] = {}
        #: qualname -> {param name -> sink-relevant kinds}.
        self.param_sinks: Dict[str, Dict[str, FrozenSet[str]]] = {}
        self._findings: List[Tuple[FunctionInfo, int, FrozenSet[str], str]] = []
        self._sorted_quals = sorted(self.table.functions)
        self._solve_returns()
        self._solve_sinks()

    # -- results -----------------------------------------------------------

    def flows(self) -> List[Tuple[FunctionInfo, int, FrozenSet[str], str]]:
        """(function, line, concrete kinds, sink label) per tainted flow."""
        return list(self._findings)

    # -- fixpoints ---------------------------------------------------------

    def _solve_returns(self) -> None:
        for _sweep in range(self.MAX_SWEEPS):
            changed = False
            for qual in self._sorted_quals:
                fn = self.table.functions[qual]
                computed = self._return_taint(fn)
                if computed != self.returns.get(qual, _EMPTY):
                    self.returns[qual] = computed
                    changed = True
            if not changed:
                break

    def _solve_sinks(self) -> None:
        for _sweep in range(self.MAX_SWEEPS):
            changed = False
            for qual in self._sorted_quals:
                fn = self.table.functions[qual]
                sinking = self._collect_sinks(fn, record=False)
                if sinking != self.param_sinks.get(qual, {}):
                    self.param_sinks[qual] = sinking
                    changed = True
            if not changed:
                break
        # Final reporting pass with the stable summaries.
        self._findings = []
        for qual in self._sorted_quals:
            self._collect_sinks(self.table.functions[qual], record=True)

    # -- per-function local taint ------------------------------------------

    def _locals_of(self, fn: FunctionInfo) -> Dict[str, Taint]:
        node = fn.node
        taints: Dict[str, Taint] = {}
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return taints
        params = set(_param_names(fn))
        for _round in range(3):  # flow-insensitive: 3 rounds saturate chains
            changed = False

            def absorb(name: str, taint: Taint) -> None:
                nonlocal changed
                merged = taints.get(name, _EMPTY) | taint
                if merged != taints.get(name, _EMPTY):
                    taints[name] = merged
                    changed = True

            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign):
                    value = self._expr(sub.value, fn, taints, params)
                    for tgt in sub.targets:
                        self._absorb_target(tgt, value, absorb)
                elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                    if sub.value is None:
                        continue
                    value = self._expr(sub.value, fn, taints, params)
                    self._absorb_target(sub.target, value, absorb)
                elif isinstance(sub, (ast.For, ast.AsyncFor)):
                    value = self._expr(sub.iter, fn, taints, params)
                    if self.engine.is_set_typed(fn, sub.iter):
                        value = value | {"set-order"}
                    self._absorb_target(sub.target, value, absorb)
                elif isinstance(sub, ast.withitem):
                    if sub.optional_vars is not None:
                        value = self._expr(
                            sub.context_expr, fn, taints, params
                        )
                        self._absorb_target(sub.optional_vars, value, absorb)
            if not changed:
                break
        return taints

    @staticmethod
    def _absorb_target(target: ast.AST, value: Taint, absorb) -> None:
        if isinstance(target, ast.Name):
            absorb(target.id, value)
        elif isinstance(target, ast.Starred):
            TaintAnalysis._absorb_target(target.value, value, absorb)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                TaintAnalysis._absorb_target(elt, value, absorb)
        elif isinstance(target, ast.Subscript):
            # ``results[i] = record`` taints the container binding.
            TaintAnalysis._absorb_target(target.value, value, absorb)
        # Attribute targets: field stores are outside this rule's flow
        # model (the runtime effect sanitizer owns that boundary).

    def _return_taint(self, fn: FunctionInfo) -> Taint:
        node = fn.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return _EMPTY
        taints = self._locals_of(fn)
        params = set(_param_names(fn))
        out: Set[TaintItem] = set()
        for sub in ast.walk(node):
            value: Optional[ast.AST] = None
            if isinstance(sub, ast.Return):
                value = sub.value
            elif isinstance(sub, (ast.Yield, ast.YieldFrom)):
                value = sub.value
            if value is not None:
                out |= self._expr(value, fn, taints, params)
        return frozenset(out)

    # -- expression taint --------------------------------------------------

    def _expr(
        self,
        node: Optional[ast.AST],
        fn: FunctionInfo,
        taints: Dict[str, Taint],
        params: Set[str],
    ) -> Taint:
        if node is None:
            return _EMPTY
        if isinstance(node, ast.Name):
            out = taints.get(node.id, _EMPTY)
            if node.id in params:
                out = out | {("param", node.id)}
            return out
        if isinstance(node, ast.Call):
            return self._call_taint(node, fn, taints, params)
        if isinstance(node, ast.Attribute):
            # Receiver taint rides along (``record.worker`` of a tainted
            # record); fields of clean objects stay clean (no field map).
            return self._expr(node.value, fn, taints, params)
        if isinstance(node, ast.Subscript):
            if dotted_name(node.value) == "os.environ":
                return frozenset({"env"})
            # The key selects; it does not flow into the value.
            return self._expr(node.value, fn, taints, params)
        if isinstance(node, (ast.SetComp,)):
            return _strip_order(self._comp_taint(node, fn, taints, params))
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            return self._comp_taint(node, fn, taints, params)
        if isinstance(node, ast.Set):
            out: Set[TaintItem] = set()
            for elt in node.elts:
                out |= self._expr(elt, fn, taints, params)
            return _strip_order(frozenset(out))
        if isinstance(node, ast.Lambda):
            return _EMPTY
        if isinstance(node, (ast.Constant,)):
            return _EMPTY
        # Generic containers/operators: the union of child expressions
        # (BinOp, BoolOp, Compare, IfExp, Tuple, List, Dict, JoinedStr,
        # FormattedValue, Starred, Await, keyword values, slices...).
        out = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.keyword)):
                target = child.value if isinstance(child, ast.keyword) else child
                out |= self._expr(target, fn, taints, params)
        return frozenset(out)

    def _comp_taint(
        self,
        node: ast.AST,
        fn: FunctionInfo,
        taints: Dict[str, Taint],
        params: Set[str],
    ) -> Taint:
        """Comprehension taint: iterated sources plus the element body,
        with the generator targets bound to their iterables' taint."""
        assert isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        )
        overlay = dict(taints)
        out: Set[TaintItem] = set()
        for gen in node.generators:
            iter_taint = self._expr(gen.iter, fn, overlay, params)
            if self.engine.is_set_typed(fn, gen.iter):
                iter_taint = iter_taint | {"set-order"}
            out |= iter_taint

            def bind(target: ast.AST) -> None:
                if isinstance(target, ast.Name):
                    overlay[target.id] = (
                        overlay.get(target.id, _EMPTY) | iter_taint
                    )
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        bind(elt)

            bind(gen.target)
        if isinstance(node, ast.DictComp):
            out |= self._expr(node.key, fn, overlay, params)
            out |= self._expr(node.value, fn, overlay, params)
        else:
            out |= self._expr(node.elt, fn, overlay, params)
        return frozenset(out)

    def _call_taint(
        self,
        call: ast.Call,
        fn: FunctionInfo,
        taints: Dict[str, Taint],
        params: Set[str],
    ) -> Taint:
        func = call.func
        env = self.table.env_of(fn)
        aliases = self.engine.aliases.get(fn.module, {})

        def args_taint() -> Taint:
            out: Set[TaintItem] = set()
            for arg in call.args:
                out |= self._expr(arg, fn, taints, params)
            for kw in call.keywords:
                out |= self._expr(kw.value, fn, taints, params)
            return frozenset(out)

        # Order-free consumer: erases order kinds from whatever it eats.
        if (
            isinstance(func, ast.Name)
            and func.id in ORDER_FREE_CONSUMERS
            and func.id not in env
        ):
            return _strip_order(args_taint())

        out: Set[TaintItem] = set()
        # -- sources ---------------------------------------------------
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and env.get("random") is None
            and func.attr not in RNG_ALLOWED
        ):
            out.add("rng")
        dotted = dotted_name(func)
        if dotted is not None:
            if dotted in WALL_CALLS:
                out.add("wallclock")
            elif dotted in ("os.getenv",) or dotted.startswith("os.environ."):
                out.add("env")
        if isinstance(func, ast.Name):
            alias_target = aliases.get(func.id)
            if alias_target is not None:
                if (
                    alias_target.startswith("random.")
                    and alias_target.split(".", 1)[1] not in RNG_ALLOWED
                ):
                    out.add("rng")
                elif alias_target in WALL_CALLS or (
                    alias_target.startswith("time.")
                    and alias_target.split(".", 1)[1] in WALL_IMPORTS
                ):
                    out.add("wallclock")
                elif alias_target == "os.getenv":
                    out.add("env")
            if func.id in ("id", "hash") and func.id not in env:
                out.add("idhash")
            if func.id == "as_completed":
                out.add("pool-order")
            if (
                func.id in ORDER_KEEPING_CALLS
                and call.args
                and self.engine.is_set_typed(fn, call.args[0])
            ):
                out.add("set-order")
        if isinstance(func, ast.Attribute) and func.attr in (
            "imap_unordered", "as_completed",
        ):
            out.add("pool-order")

        # -- project calls: substitute callee return taint -------------
        callee = self.engine.resolve(fn, call)
        if callee is not None:
            callee_fn = self.table.functions.get(callee)
            rt = self.returns.get(callee, _EMPTY)
            out |= _concrete(rt)
            if callee_fn is not None:
                for _tag, pname in sorted(_symbolic(rt)):
                    arg = self._arg_for(call, callee_fn, pname)
                    if arg is not None:
                        out |= self._expr(arg, fn, taints, params)
            if callee.rsplit(".", 1)[-1] in SPEC_ORDER_MERGERS or (
                callee_fn is not None
                and callee_fn.name in SPEC_ORDER_MERGERS
            ):
                out.discard("pool-order")
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in ("get", "pop", "setdefault")
            and call.args
        ):
            # Keyed lookup: the key selects an entry, it does not flow
            # into the value (the identity-keyed-memo idiom --
            # ``memo.get(id(group))`` returns the memoized value, not
            # anything id-derived).  Defaults and receiver still flow.
            out |= self._expr(func.value, fn, taints, params)
            for arg in call.args[1:]:
                out |= self._expr(arg, fn, taints, params)
            for kw in call.keywords:
                out |= self._expr(kw.value, fn, taints, params)
        else:
            # Unknown callable: value taint flows through (str(),
            # sha256(), formatting helpers...); receiver taint too.
            out |= args_taint()
            if isinstance(func, ast.Attribute):
                out |= self._expr(func.value, fn, taints, params)
        return frozenset(out)

    @staticmethod
    def _arg_for(
        call: ast.Call, callee: FunctionInfo, pname: str
    ) -> Optional[ast.AST]:
        """The argument expression bound to ``pname`` at this call."""
        for kw in call.keywords:
            if kw.arg == pname:
                return kw.value
        names = _param_names(callee)
        if pname in names:
            index = names.index(pname)
            if index < len(call.args):
                arg = call.args[index]
                if not isinstance(arg, ast.Starred):
                    return arg
        return None

    # -- sinks -------------------------------------------------------------

    def _receiver_class(
        self, fn: FunctionInfo, expr: ast.AST
    ) -> Optional[str]:
        inferred: Optional[TypeRef] = self.table.infer_expr(
            expr, self.table.env_of(fn)
        )
        return inferred.name if inferred is not None else None

    def _sink_of(
        self, fn: FunctionInfo, call: ast.Call
    ) -> Optional[Tuple[str, FrozenSet[str], bool]]:
        """(label, relevant kinds, include-receiver) when ``call`` is a
        sink, else None."""
        func = call.func
        if isinstance(func, ast.Attribute):
            recv_cls = self._receiver_class(fn, func.value)
            if func.attr == "emit" and recv_cls == TRACEPOINT_CLASS:
                return "tracepoint emit", _ALL_KINDS, False
            expected = METRIC_SINKS.get(func.attr)
            if expected is not None and recv_cls == expected:
                return f"metrics {recv_cls}.{func.attr}", _ALL_KINDS, False
            if "digest" in func.attr:
                return f"digest ({func.attr})", _ALL_KINDS, True
        callee = self.engine.resolve(fn, call)
        if callee is not None:
            bare = callee.rsplit(".", 1)[-1]
            callee_fn = self.table.functions.get(callee)
            if bare == "__init__" and callee_fn is not None:
                if callee_fn.cls == SPEC_CLASS:
                    return "TrialSpec fingerprint capture", _SPEC_KINDS, False
            elif "digest" in bare:
                return f"digest ({bare})", _ALL_KINDS, True
        elif isinstance(func, ast.Name) and "digest" in func.id:
            return f"digest ({func.id})", _ALL_KINDS, True
        return None

    def _collect_sinks(
        self, fn: FunctionInfo, record: bool
    ) -> Dict[str, FrozenSet[str]]:
        """One pass over ``fn``'s calls: parameter-sink summary, plus
        findings (when ``record``) for concrete tainted flows."""
        node = fn.node
        sinking: Dict[str, FrozenSet[str]] = {}
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return sinking
        taints = self._locals_of(fn)
        params = set(_param_names(fn))

        def register(taint: Taint, kinds: FrozenSet[str], label: str,
                     line: int) -> None:
            hit = _concrete(taint) & kinds
            if hit and record:
                self._findings.append((fn, line, frozenset(hit), label))
            for _tag, pname in _symbolic(taint):
                sinking[pname] = sinking.get(pname, frozenset()) | kinds

        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            sink = self._sink_of(fn, sub)
            if sink is not None:
                label, kinds, with_receiver = sink
                taint: Set[TaintItem] = set()
                for arg in sub.args:
                    taint |= self._expr(arg, fn, taints, params)
                for kw in sub.keywords:
                    taint |= self._expr(kw.value, fn, taints, params)
                if with_receiver and isinstance(sub.func, ast.Attribute):
                    taint |= self._expr(
                        sub.func.value, fn, taints, params
                    )
                register(frozenset(taint), kinds, label, sub.lineno)
                continue
            # Calls into functions whose parameters reach a sink.
            callee = self.engine.resolve(fn, sub)
            if callee is None:
                continue
            callee_fn = self.table.functions.get(callee)
            callee_sinks = self.param_sinks.get(callee, {})
            if callee_fn is None or not callee_sinks:
                continue
            for pname, kinds in sorted(callee_sinks.items()):
                arg = self._arg_for(sub, callee_fn, pname)
                if arg is None:
                    continue
                taint_arg = self._expr(arg, fn, taints, params)
                register(
                    taint_arg, kinds,
                    f"sink-reaching parameter '{pname}' of "
                    f"{callee_fn.qualname}",
                    sub.lineno,
                )
        return sinking


class TaintRule(Rule):
    """Whole-program nondeterminism-source -> witness-sink taint."""

    rule_id = "determinism-taint"
    description = (
        "nondeterminism sources (unseeded random, wall clock, env, "
        "id()/hash(), pool completion order, set iteration order) must "
        "not flow into schedule digests, tracepoint emits, metrics, or "
        "TrialSpec fingerprints"
    )
    scope = None  # witnesses live in obs/perf/slo; sources anywhere
    cross_file = True

    def __init__(self) -> None:
        self._files: List[Tuple[str, str, ast.Module]] = []
        self._lines: Dict[str, List[str]] = {}
        self._display: Dict[str, str] = {}

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        self._files.append((ctx.module, ctx.display_path, ctx.tree))
        self._lines[ctx.display_path] = ctx.lines
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        if not self._files:
            return
        engine = EffectEngine(self._files)
        analysis = TaintAnalysis(engine)
        emitted: Set[Tuple[str, int, FrozenSet[str], str]] = set()
        for fn, line, kinds, label in analysis.flows():
            key = (fn.display_path, line, kinds, label)
            if key in emitted:
                continue
            emitted.add(key)
            lines = self._lines.get(fn.display_path, [])
            snippet = (
                lines[line - 1].strip() if 1 <= line <= len(lines) else ""
            )
            kind_list = ", ".join(sorted(kinds))
            yield Finding(
                rule_id=self.rule_id,
                path=fn.display_path,
                line=line,
                col=0,
                message=(
                    f"value tainted by nondeterminism source(s) "
                    f"[{kind_list}] reaches {label}; two identical runs "
                    "can disagree on this witness -- sanitize the flow "
                    "(sorted() for order taint, a seeded random.Random, "
                    "the spec-order pool merge) or suppress with "
                    "'# repro: noqa[determinism-taint]' and a comment "
                    "explaining why the value is reproducible"
                ),
                snippet=snippet,
                severity="error",
            )

"""Fast-path discipline: load reads must go through the cached accessors.

The incremental load-tracking layer (``repro.sched.runqueue`` /
``repro.sched.load``) works because every consumer observes load through
``RunQueue.load(now)`` and ``Task.load(now)``: those accessors decay the
utilization average to *now*, apply the cgroup divisor, and hit the
per-runqueue memo.  Code that reads the underlying tracker fields
directly sees a value frozen at the last update -- stale by up to a
tick -- and silently diverges from what the balancer computes, the
exact class of bug the ``fastpath`` determinism contract (byte-identical
schedules with caching on or off) exists to prevent.

``perf-load-bypass`` flags, inside ``repro.sched``/``repro.sim``:

* ``.tracker.util`` / ``.tracker.last_update_us`` reads outside the two
  modules that own the representation (``repro.sched.task`` decays it,
  ``repro.sched.load`` defines it).  Calling ``.tracker.update(...)`` /
  ``.tracker.peek(...)`` remains legal everywhere: advancing the average
  is how accounting works; bypassing the decay is the bug.
* ``._cached_load*`` reads outside ``repro.sched.runqueue`` -- the memo
  cells are internal to the cache keyed by (now, mutations, divisor
  epoch); reading one elsewhere trades a consistency guarantee for a
  stale float.

Aliasing does not launder a bypass: ``tr = task.tracker; tr.util`` reads
the very same frozen field as ``task.tracker.util``, so tracker objects
bound to local names are tracked and their field reads flagged too.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.core import FileContext, Finding, Rule

#: Modules that own the tracker representation and may read its fields.
_TRACKER_OWNERS = ("repro.sched.task", "repro.sched.load")

#: The one module allowed to touch the runqueue load-memo cells.
_CACHE_OWNER = "repro.sched.runqueue"

#: Tracker fields whose direct read bypasses decay-to-now.
_TRACKER_FIELDS = ("util", "last_update_us")


class LoadBypassRule(Rule):
    """Flag raw load-field reads that bypass the cached accessors."""

    rule_id = "perf-load-bypass"
    description = (
        "load must be read via RunQueue.load(now)/Task.load(now); raw "
        "tracker or cache-cell reads observe stale values"
    )
    scope: Tuple[str, ...] = ("repro.sched", "repro.sim")

    @staticmethod
    def _tracker_aliases(tree: ast.Module) -> Set[str]:
        """Local names bound to a ``.tracker`` object anywhere in the file.

        Conservative file-wide set: a name assigned from ``X.tracker`` in
        one scope is treated as a tracker alias everywhere, which is the
        right bias for a lint (reusing the name for something else while
        also aliasing a tracker would be its own problem).
        """
        aliases: Set[str] = set()
        for node in ast.walk(tree):
            value = None
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.NamedExpr):
                value, targets = node.value, [node.target]
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "tracker"
            ):
                for target in targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        return aliases

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = self._tracker_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            is_tracker_read = node.attr in _TRACKER_FIELDS and (
                (
                    isinstance(node.value, ast.Attribute)
                    and node.value.attr == "tracker"
                )
                or (
                    isinstance(node.value, ast.Name)
                    and node.value.id in aliases
                )
            )
            if is_tracker_read and ctx.module not in _TRACKER_OWNERS:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"raw '.tracker.{node.attr}' read bypasses decay-to-"
                    "now; call .load(now) (or tracker.peek(now, ...)) "
                    "instead",
                )
            elif (
                node.attr.startswith("_cached_load")
                and ctx.module != _CACHE_OWNER
            ):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"'.{node.attr}' is a load-memo cell private to "
                    "repro.sched.runqueue; call RunQueue.load(now) instead",
                )

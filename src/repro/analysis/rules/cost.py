"""Hot-path allocation & complexity certification.

The dynamic half of PR 8's lesson -- "the residue is scalar object
churn" -- becomes two static gates over the
:mod:`~repro.analysis.costmodel` analysis:

``hot-path-alloc`` (severity: error)
    A hot root whose declared class (:mod:`repro.sched.allocdecl`) is
    *stronger* than the inferred one: a per-call allocation site is
    reachable from a root declared ``alloc-free``/``amortized``, or an
    amortized site from a root declared ``alloc-free``.  The finding
    lands on the allocation site itself and carries the provenance
    chain (root -> ... -> owning function) so the churn is attributable
    without re-running the analysis.  A root with no declaration at all
    is also an error -- certification is opt-out by declaring
    ``allocating``, never by silence.

``hot-path-complexity`` (severity: warning)
    A hot root's cost expression grew a term the committed
    ``COST_baseline.json`` does not dominate -- e.g. an ``O(cpus)`` scan
    sneaking into an ``O(1)`` memo hit path.  Both the worst-case and
    the steady-state expression are gated; roots absent from the
    baseline are skipped (the drift test pins the baseline itself).

Like the coherence rule, one class emits both finding kinds; like the
purity rule, it is ``cross_file`` and stashes the analysis document on
``self.report`` for the runner's ``--cost-report`` writer.
"""

from __future__ import annotations

import ast
import json
import os
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import FileContext, Finding, Rule
from repro.analysis.costmodel import cost_report, dominated
from repro.analysis.effects import EffectEngine

#: Where the committed cost/alloc baseline lives, relative to the
#: invocation directory (same convention as ``lint-baseline.json``).
DEFAULT_COST_BASELINE = "COST_baseline.json"

#: How many chain hops one finding spells out before eliding.
_MAX_CHAIN = 4

#: Lattice order for declaration-vs-inference comparison.
_RANK = {"alloc-free": 0, "amortized": 1, "allocating": 2}


def load_cost_baseline(path: str) -> Optional[Dict[str, object]]:
    """The committed baseline document, or None when absent (fresh
    checkouts and fixture runs gate on declarations only)."""
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return data if isinstance(data, dict) else None


class HotPathCostRule(Rule):
    """Certify hot-root allocation classes and cost expressions."""

    rule_id = "hot-path-alloc"
    description = (
        "hot roots must not allocate beyond their declared class "
        "(hot-path-alloc), and their cost expressions must stay within "
        "the committed baseline (hot-path-complexity)"
    )
    scope: Tuple[str, ...] = ("repro.sched", "repro.sim", "repro.core")
    cross_file = True

    def __init__(self, baseline_path: Optional[str] = None) -> None:
        self._files: List[Tuple[str, str, ast.Module]] = []
        self._lines: Dict[str, List[str]] = {}
        self._baseline_path = (
            baseline_path if baseline_path is not None
            else DEFAULT_COST_BASELINE
        )
        #: The cost-report document, populated by finalize() and
        #: consumed by the runner's ``--cost-report`` writer.
        self.report: Optional[Dict[str, object]] = None

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        self._files.append((ctx.module, ctx.display_path, ctx.tree))
        self._lines[ctx.display_path] = ctx.lines
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        if not self._files:
            return
        engine = EffectEngine(sorted(self._files))
        baseline = load_cost_baseline(self._baseline_path)
        declared = self._declarations()
        report = cost_report(engine, baseline=baseline, declared=declared)
        self.report = report
        roots = report["roots"]
        assert isinstance(roots, dict)
        for label in sorted(roots):
            root = roots[label]
            assert isinstance(root, dict)
            for finding in self._check_alloc(label, root):
                yield finding
            for finding in self._check_complexity(label, root, baseline):
                yield finding

    # -- hot-path-alloc ----------------------------------------------------

    def _declarations(self) -> Dict[str, str]:
        """Real-tree runs certify against the shipped declarations;
        fixture trees (no hot roots resolve) still flow through them
        harmlessly because certification is keyed by resolved roots."""
        from repro.sched.allocdecl import DECLARED_ALLOC

        return dict(DECLARED_ALLOC)

    def _check_alloc(
        self, label: str, root: Dict[str, object]
    ) -> Iterator[Finding]:
        declared = root.get("declared")
        inferred = str(root.get("inferred"))
        if declared is None:
            line = int(str(root.get("line", 0)))
            yield self._finding(
                "hot-path-alloc",
                str(root.get("path", "")),
                line,
                (
                    f"hot root [{label}] ({root.get('function')}) has no "
                    "declared allocation class -- add it to "
                    "repro.sched.allocdecl.DECLARED_ALLOC (declare "
                    "'allocating' to opt out of certification "
                    "explicitly)"
                ),
                severity="error",
            )
            return
        declared_rank = _RANK.get(str(declared), 2)
        inferred_rank = _RANK.get(inferred, 2)
        if inferred_rank <= declared_rank:
            return
        sites = root.get("allocation_sites")
        assert isinstance(sites, list)
        breach = (
            "per-call" if str(declared) in ("alloc-free", "amortized")
            else ""
        )
        seen: Set[Tuple[str, int]] = set()
        for site in sites:
            assert isinstance(site, dict)
            if not site.get("certifiable", True):
                continue
            effective = str(site.get("escape"))
            if str(declared) == "alloc-free":
                bad = effective in ("per-call", "amortized")
            else:
                bad = effective == breach
            if not bad:
                continue
            path = str(site.get("path", ""))
            line = int(str(site.get("line", 0)))
            if (path, line) in seen:
                continue
            seen.add((path, line))
            chain = site.get("chain")
            hops = [str(h) for h in chain] if isinstance(chain, list) else []
            shown = hops[:_MAX_CHAIN]
            via = " -> ".join(shown) + (
                " -> ..." if len(hops) > len(shown) else ""
            )
            yield self._finding(
                "hot-path-alloc",
                path,
                line,
                (
                    f"{effective} {site.get('kind')} allocation reachable "
                    f"from hot root [{label}] declared {declared} "
                    f"(via {via}) -- hoist it behind the memo guard, "
                    "reuse scratch state, or weaken the declaration in "
                    "repro.sched.allocdecl (suppress with "
                    "'# repro: noqa[hot-path-alloc]' only with a comment "
                    "justifying the churn)"
                ),
                severity="error",
            )

    # -- hot-path-complexity -----------------------------------------------

    def _check_complexity(
        self,
        label: str,
        root: Dict[str, object],
        baseline: Optional[Dict[str, object]],
    ) -> Iterator[Finding]:
        if baseline is None:
            return
        base_roots = baseline.get("roots")
        if not isinstance(base_roots, dict):
            return
        base_root = base_roots.get(label)
        if not isinstance(base_root, dict):
            return  # new root: pinned by the baseline drift test instead
        pinned = base_root.get("function")
        if pinned is not None and pinned != root.get("function"):
            # The baseline pins a *specific* function (the real tree's);
            # a fixture or refactored tree resolving the same root label
            # to a different qualname cannot be judged against it.  A
            # rename in the real tree surfaces in the drift test.
            return
        cost = root.get("cost")
        assert isinstance(cost, dict)
        for which in ("worst", "steady"):
            terms = cost.get(f"{which}_terms")
            base_terms = base_root.get(f"{which}_terms")
            if not isinstance(terms, list) or not isinstance(
                base_terms, list
            ):
                continue
            base_seq: List[Sequence[str]] = [
                [str(f) for f in t] for t in base_terms
                if isinstance(t, list)
            ]
            degraded = [
                tuple(str(f) for f in t) for t in terms
                if isinstance(t, list)
                and not dominated(tuple(str(f) for f in t), base_seq)
            ]
            if not degraded:
                continue
            grown = " + ".join(
                "*".join(t) if t else "1" for t in sorted(degraded)
            )
            committed = " + ".join(
                "*".join(t) if t else "1" for t in base_terms
            ) or "1"
            yield self._finding(
                "hot-path-complexity",
                str(root.get("path", "")),
                int(str(root.get("line", 0))),
                (
                    f"hot root [{label}] ({root.get('function')}) "
                    f"{which}-case cost grew term(s) O({grown}) beyond "
                    f"the committed baseline O({committed}) -- either "
                    "restore the bound or re-baseline COST_baseline.json "
                    "with a justification in the PR"
                ),
                severity="warning",
            )

    # -- shared ------------------------------------------------------------

    def _finding(
        self,
        rule_id: str,
        path: str,
        line: int,
        message: str,
        severity: str,
    ) -> Finding:
        lines = self._lines.get(path, [])
        snippet = (
            lines[line - 1].strip() if 1 <= line <= len(lines) else ""
        )
        return Finding(
            rule_id=rule_id,
            path=path,
            line=line,
            col=0,
            message=message,
            snippet=snippet,
            severity=severity,
        )


def build_cost_baseline(
    report: Dict[str, object],
    previous: Optional[Dict[str, object]] = None,
    weights: Optional[Dict[str, float]] = None,
) -> Dict[str, object]:
    """The committable ``COST_baseline.json`` derived from a cost report.

    Terms and classes come from the fresh analysis; ``profile_weights``
    (harvested from ``repro bench --profile`` runs) are carried over
    from the previous baseline so re-committing a cost bound never
    silently discards the profiling evidence behind the residue
    ranking.  Passing ``weights`` (a fresh harvest, ``repro lint
    --write-cost-baseline --profile-weights``) replaces the carried
    evidence instead.
    """
    roots_in = report.get("roots")
    assert isinstance(roots_in, dict)
    roots_out: Dict[str, object] = {}
    for label in sorted(roots_in):
        root = roots_in[label]
        assert isinstance(root, dict)
        cost = root.get("cost")
        assert isinstance(cost, dict)
        roots_out[label] = {
            "function": root.get("function"),
            "declared": root.get("declared"),
            "inferred": root.get("inferred"),
            "worst": cost.get("worst"),
            "steady": cost.get("steady"),
            "worst_terms": cost.get("worst_terms"),
            "steady_terms": cost.get("steady_terms"),
        }
    weights_out: Dict[str, object] = {}
    if weights is not None:
        weights_out = {k: weights[k] for k in sorted(weights)}
    elif previous is not None:
        raw = previous.get("profile_weights")
        if isinstance(raw, dict):
            weights_out = dict(raw)
    return {
        "version": report.get("version"),
        "domain_sizes": report.get("domain_sizes"),
        "profile_weights": weights_out,
        "roots": roots_out,
    }

"""The shipped rule set of the offline sanity checker.

Every rule is grounded in an invariant this repository already depends on;
see each module's docstring for the contract it enforces and the incident
class it prevents.
"""

from __future__ import annotations

from typing import List

from repro.analysis.core import Rule
from repro.analysis.rules.coherence import CoherenceRule
from repro.analysis.rules.determinism import (
    SetIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.analysis.rules.flags import FeatureFlagRule
from repro.analysis.rules.layering import LayeringRule, layering_rules
from repro.analysis.rules.orchestrator import OrchestratorForkSafetyRule
from repro.analysis.rules.perf import LoadBypassRule
from repro.analysis.rules.purity import PureHotPathRule
from repro.analysis.rules.sloreg import SloRegistryRule
from repro.analysis.rules.taint import TaintRule
from repro.analysis.rules.tracepoints import TracepointConsistencyRule


def default_rules() -> List[Rule]:
    """Fresh instances of every shipped rule (rules hold per-run state)."""
    rules: List[Rule] = [
        UnseededRandomRule(),
        WallClockRule(),
        SetIterationRule(),
        FeatureFlagRule(),
        LoadBypassRule(),
        CoherenceRule(),
        TaintRule(),
        PureHotPathRule(),
        TracepointConsistencyRule(),
        OrchestratorForkSafetyRule(),
        SloRegistryRule(),
    ]
    rules.extend(layering_rules())
    return rules


def split_rules(rules: List[Rule]) -> "tuple[List[Rule], List[Rule]]":
    """(per-file, cross-file) partition for the parallel runner.

    Per-file rules are stateless across files and may run in worker
    shards; cross-file rules accumulate whole-program state and must see
    every file in one process.
    """
    per_file = [r for r in rules if not r.cross_file]
    cross = [r for r in rules if r.cross_file]
    return per_file, cross


__all__ = [
    "default_rules",
    "split_rules",
    "CoherenceRule",
    "UnseededRandomRule",
    "WallClockRule",
    "SetIterationRule",
    "FeatureFlagRule",
    "LayeringRule",
    "LoadBypassRule",
    "OrchestratorForkSafetyRule",
    "PureHotPathRule",
    "SloRegistryRule",
    "TaintRule",
    "layering_rules",
    "TracepointConsistencyRule",
]

"""The shipped rule set of the offline sanity checker.

Every rule is grounded in an invariant this repository already depends on;
see each module's docstring for the contract it enforces and the incident
class it prevents.
"""

from __future__ import annotations

from typing import List

from repro.analysis.core import Rule
from repro.analysis.rules.coherence import CoherenceRule
from repro.analysis.rules.determinism import (
    SetIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.analysis.rules.flags import FeatureFlagRule
from repro.analysis.rules.layering import LayeringRule, layering_rules
from repro.analysis.rules.orchestrator import OrchestratorForkSafetyRule
from repro.analysis.rules.perf import LoadBypassRule
from repro.analysis.rules.sloreg import SloRegistryRule
from repro.analysis.rules.tracepoints import TracepointConsistencyRule


def default_rules() -> List[Rule]:
    """Fresh instances of every shipped rule (rules hold per-run state)."""
    rules: List[Rule] = [
        UnseededRandomRule(),
        WallClockRule(),
        SetIterationRule(),
        FeatureFlagRule(),
        LoadBypassRule(),
        CoherenceRule(),
        TracepointConsistencyRule(),
        OrchestratorForkSafetyRule(),
        SloRegistryRule(),
    ]
    rules.extend(layering_rules())
    return rules


__all__ = [
    "default_rules",
    "CoherenceRule",
    "UnseededRandomRule",
    "WallClockRule",
    "SetIterationRule",
    "FeatureFlagRule",
    "LayeringRule",
    "LoadBypassRule",
    "OrchestratorForkSafetyRule",
    "SloRegistryRule",
    "layering_rules",
    "TracepointConsistencyRule",
]

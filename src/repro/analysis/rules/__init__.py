"""The shipped rule set of the offline sanity checker.

Every rule is grounded in an invariant this repository already depends on;
see each module's docstring for the contract it enforces and the incident
class it prevents.
"""

from __future__ import annotations

from typing import List

from repro.analysis.core import Rule
from repro.analysis.rules.coherence import CoherenceRule
from repro.analysis.rules.cost import HotPathCostRule
from repro.analysis.rules.determinism import (
    SetIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.analysis.rules.flags import FeatureFlagRule
from repro.analysis.rules.layering import LayeringRule, layering_rules
from repro.analysis.rules.orchestrator import OrchestratorForkSafetyRule
from repro.analysis.rules.perf import LoadBypassRule
from repro.analysis.rules.purity import PureHotPathRule
from repro.analysis.rules.sloreg import SloRegistryRule
from repro.analysis.rules.taint import TaintRule
from repro.analysis.rules.tracepoints import TracepointConsistencyRule


def default_rules() -> List[Rule]:
    """Fresh instances of every shipped rule (rules hold per-run state)."""
    rules: List[Rule] = [
        UnseededRandomRule(),
        WallClockRule(),
        SetIterationRule(),
        FeatureFlagRule(),
        LoadBypassRule(),
        CoherenceRule(),
        TaintRule(),
        PureHotPathRule(),
        HotPathCostRule(),
        TracepointConsistencyRule(),
        OrchestratorForkSafetyRule(),
        SloRegistryRule(),
    ]
    rules.extend(layering_rules())
    return rules


def split_rules(rules: List[Rule]) -> "tuple[List[Rule], List[Rule]]":
    """(per-file, cross-file) partition for the parallel runner.

    Per-file rules are stateless across files and may run in worker
    shards; cross-file rules accumulate whole-program state and must see
    every file in one process.  A rule counts as cross-file when it
    says so (``cross_file = True``) *or* when its class overrides
    :meth:`Rule.finalize`: finalize-time findings depend on every file
    the instance visited, so running such a rule inside a worker shard
    would emit per-shard results that vary with the shard split.  The
    attribute alone used to decide this, which silently sharded any
    finalize-carrying rule that forgot to set it -- ``-jN`` output then
    differed from ``-j1``.
    """
    per_file = [
        r for r in rules
        if not r.cross_file
        and type(r).finalize is Rule.finalize
    ]
    cross = [r for r in rules if r not in per_file]
    return per_file, cross


__all__ = [
    "default_rules",
    "split_rules",
    "CoherenceRule",
    "UnseededRandomRule",
    "WallClockRule",
    "SetIterationRule",
    "FeatureFlagRule",
    "HotPathCostRule",
    "LayeringRule",
    "LoadBypassRule",
    "OrchestratorForkSafetyRule",
    "PureHotPathRule",
    "SloRegistryRule",
    "TaintRule",
    "layering_rules",
    "TracepointConsistencyRule",
]

"""Feature-flag discipline: buggy/fixed toggles live in ``SchedFeatures``.

The paper's four bugs are modeled as *feature flags* so any combination of
buggy/fixed variants can run side by side (Table 2 is exactly such a
matrix).  That only works if every decision point reads its toggle from the
one :class:`repro.sched.features.SchedFeatures` instance -- an ad-hoc
``buggy=True`` parameter or a locally-defined ``fix_*`` boolean silently
forks the configuration space and cannot be swept by the experiment
harness.  Inside ``repro.sched``/``repro.sim`` this rule flags:

* function parameters named like toggles (``fix_*``, ``buggy``, ``fixed``,
  ``variant``);
* literal ``True``/``False`` assignments to toggle-named variables;
* ``.fix_*`` attribute reads whose receiver is not a ``features`` object;
* ``fix_*=...`` keyword arguments to anything other than the
  ``SchedFeatures`` constructor/``replace``/``with_fixes``;
* comparisons against the variant strings ``"buggy"``/``"fixed"`` (variant
  naming belongs to the experiment layer).

``repro.sched.features`` itself -- the single legitimate home of the
flags -- is exempt.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule

_TOGGLE_NAME = re.compile(r"^(fix_[a-z0-9_]+|buggy|fixed|variant)$")
_FLAG_ATTR = re.compile(r"^fix_[a-z0-9_]+$")
_ALLOWED_FLAG_CALLS = {"SchedFeatures", "replace", "with_fixes"}
_VARIANT_STRINGS = {"buggy", "fixed"}

#: The one module allowed to define and name the flags.
_EXEMPT_MODULES = ("repro.sched.features",)


def _is_features_receiver(node: ast.AST) -> bool:
    """True for ``features`` / ``self.features`` / ``sched.features`` ..."""
    if isinstance(node, ast.Name):
        return node.id == "features"
    if isinstance(node, ast.Attribute):
        return node.attr == "features"
    return False


class FeatureFlagRule(Rule):
    rule_id = "flag-discipline"
    description = (
        "buggy/fixed toggles must be read from SchedFeatures, not "
        "ad-hoc booleans"
    )
    scope = ("repro.sched", "repro.sim")

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module in _EXEMPT_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = (
                    list(node.args.posonlyargs)
                    + list(node.args.args)
                    + list(node.args.kwonlyargs)
                )
                for arg in args:
                    if _TOGGLE_NAME.match(arg.arg):
                        yield ctx.finding(
                            self.rule_id,
                            node,
                            f"parameter {arg.arg!r} of {node.name}() is an "
                            "ad-hoc variant toggle; thread the choice "
                            "through SchedFeatures",
                        )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = node.value
                if not (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, bool)
                ):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name) and _TOGGLE_NAME.match(
                        target.id
                    ):
                        yield ctx.finding(
                            self.rule_id,
                            node,
                            f"literal boolean assigned to toggle-named "
                            f"{target.id!r}; read the flag from "
                            "SchedFeatures instead",
                        )
            elif isinstance(node, ast.Attribute):
                if _FLAG_ATTR.match(node.attr) and not _is_features_receiver(
                    node.value
                ):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"flag attribute .{node.attr} read from a "
                        "non-features object; fix flags live on "
                        "SchedFeatures only",
                    )
            elif isinstance(node, ast.Call):
                func_name = ""
                if isinstance(node.func, ast.Name):
                    func_name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    func_name = node.func.attr
                if func_name in _ALLOWED_FLAG_CALLS:
                    continue
                for keyword in node.keywords:
                    if keyword.arg and _FLAG_ATTR.match(keyword.arg):
                        yield ctx.finding(
                            self.rule_id,
                            node,
                            f"keyword {keyword.arg!r} passed to "
                            f"{func_name or 'a call'}(); fix flags are "
                            "only configured via SchedFeatures/replace/"
                            "with_fixes",
                        )
            elif isinstance(node, ast.Compare):
                literals = [
                    c
                    for c in [node.left] + list(node.comparators)
                    if isinstance(c, ast.Constant)
                    and c.value in _VARIANT_STRINGS
                ]
                for literal in literals:
                    yield ctx.finding(
                        self.rule_id,
                        literal,
                        f"comparison against variant string "
                        f"{literal.value!r} inside the scheduler/simulator; "
                        "variant naming belongs to repro.experiments, "
                        "behavior gates on SchedFeatures",
                    )

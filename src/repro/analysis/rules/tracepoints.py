"""Tracepoint-registry consistency: the bus and its declarations agree.

``repro.obs.tracepoints`` declares every event name the bus carries in
``TRACEPOINT_NAMES`` (name -> one-line description).  Consumers subscribe
by name or prefix, so a producer emitting an undeclared name is silently
invisible to any consumer that trusted the declared list -- and a declared
name nobody emits is dead documentation.  Three findings:

* ``tp-orphan-emit`` -- a string literal passed to ``.tracepoint(...)`` or
  ``span(...)`` that is not declared.
* ``tp-dead-declaration`` -- a declared name no producer in the analyzed
  tree ever materializes.
* ``tp-dynamic-name`` -- a non-literal tracepoint name outside the
  framework module itself; dynamic names defeat both this check and
  grep-ability, which is the entire point of a static event namespace.

If the declaration module is not part of the analyzed file set (linting a
subtree), the cross-checks are skipped rather than reporting every use as
an orphan.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.core import FileContext, Finding, Rule

#: Where the declarations live and what the declaration mapping is called.
DECLARATION_MODULE = "repro.obs.tracepoints"
DECLARATION_NAME = "TRACEPOINT_NAMES"


class TracepointConsistencyRule(Rule):
    rule_id = "tp-consistency"
    description = (
        "every emitted tracepoint name is declared in "
        f"{DECLARATION_MODULE}.{DECLARATION_NAME} and vice versa"
    )
    scope: Optional[Tuple[str, ...]] = None
    cross_file = True  # pairs use sites with the registry declaration

    def __init__(self) -> None:
        #: name -> Finding anchored at the first use site.
        self._uses: Dict[str, Finding] = {}
        #: name -> Finding anchored at the declaration entry.
        self._declared: Dict[str, Finding] = {}
        self._declaration_seen = False
        self._dynamic: List[Finding] = []

    # -- collection -----------------------------------------------------------

    def _record_use(self, ctx: FileContext, node: ast.Call) -> None:
        if not node.args:
            return
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            self._uses.setdefault(
                arg.value,
                ctx.finding(
                    "tp-orphan-emit",
                    node,
                    f"tracepoint {arg.value!r} is emitted here but not "
                    f"declared in {DECLARATION_MODULE}.{DECLARATION_NAME}",
                ),
            )
        elif ctx.module != DECLARATION_MODULE:
            self._dynamic.append(
                ctx.finding(
                    "tp-dynamic-name",
                    node,
                    "tracepoint name is not a string literal; dynamic "
                    "names defeat registry consistency checking and grep",
                )
            )

    def _record_declarations(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == DECLARATION_NAME
                    and isinstance(value, ast.Dict)
                ):
                    self._declaration_seen = True
                    for key in value.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            self._declared.setdefault(
                                key.value,
                                ctx.finding(
                                    "tp-dead-declaration",
                                    key,
                                    f"tracepoint {key.value!r} is declared "
                                    "but never emitted by any producer",
                                ),
                            )

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module == DECLARATION_MODULE:
            self._record_declarations(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "tracepoint":
                self._record_use(ctx, node)
            elif isinstance(func, ast.Name) and func.id == "span":
                self._record_use(ctx, node)
        return ()

    # -- cross-file verdicts --------------------------------------------------

    def finalize(self) -> Iterator[Finding]:
        yield from self._dynamic
        if not self._declaration_seen:
            return
        for name in sorted(self._uses):
            if name not in self._declared:
                yield self._uses[name]
        for name in sorted(self._declared):
            if name not in self._uses:
                yield self._declared[name]

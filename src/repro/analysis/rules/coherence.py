"""Mutation/epoch coherence: the static half of the fast-path contract.

PR 3's exact-memoization layer rests on a pairing discipline: every
statement that changes a cached-load input must bump the matching dirty
counter, or cached reads silently return stale values -- the "invariant
eroded by later patches" decay the paper's Lessons Learned section
blames for a decade of wasted cores.  This rule checks the discipline
*whole-program*: a mutation in ``runqueue.py`` that forgets its bump is
reported even when the only cached reader lives in ``balance.py``.

Two passes over the project symbol table / call graph:

``coherence-unbumped-write`` (severity: error)
    Every write to a contract field (:data:`CONTRACT`) must be followed
    -- in source order, intra-procedurally, or after the call site in
    *every* resolved caller, recursively -- by a bump of each required
    counter.  Constructor self-initialization is exempt (nothing can
    hold a stale cache of an object mid-``__init__``).  A write in a
    function with no resolved callers is uncovered: dead or dynamically
    invoked code must opt out explicitly (``# repro: noqa[...]``), never
    silently.

``coherence-unguarded-dependency`` (severity: error)
    The transitive read closure of each cached accessor (the runqueue
    load memo, the balance-pass group-stats fold, the designated-
    balancer election) must stay inside :data:`CONTRACT`: if an accessor
    grows a dependency on a contract-class field no counter guards, the
    contract itself has drifted.  Fields only ever written during
    ``__init__`` are immutable-in-practice and exempt; so are the
    ``_cached_*`` memo cells and the counters themselves.

The contract's *scope* is deliberate: ``Task``-level state (vruntime,
tracker, weight) is outside it because every task mutation rides a queue
event that already bumps -- the runtime sanitizer soak
(``SchedFeatures.with_sanitizer``) is the backstop for that boundary.
:func:`derived_facts` exposes the accessor dependency closures so the
sanitizer's hand-written fact table is pinned to the analyzer's
derivation by a test.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional
from typing import Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.core import FileContext, Finding, Rule
from repro.analysis.dataflow import (
    COUNTER_NAMES,
    CoverageAnalysis,
    FunctionSummary,
    build_summaries,
    normalize_counter,
)
from repro.analysis.symbols import FunctionInfo, SymbolTable

#: (class, field) -> dirty counters every write must bump.  ``curr`` and
#: ``_nr_running`` also feed the idle<->busy boundary the designated-
#: balancer election keys on, hence the extra ``idle_epoch``; the bump
#: may be conditional (only idle *transitions* matter) -- the analyzer
#: checks presence on the path, not the guard.
CONTRACT: Dict[Tuple[str, str], FrozenSet[str]] = {
    ("RunQueue", "_tree"): frozenset({"mutations", "load_epoch"}),
    ("RunQueue", "curr"): frozenset(
        {"mutations", "load_epoch", "idle_epoch"}
    ),
    ("RunQueue", "_nr_running"): frozenset(
        {"mutations", "load_epoch", "idle_epoch"}
    ),
    ("RunQueue", "_total_weight"): frozenset({"mutations", "load_epoch"}),
    ("CGroup", "_members"): frozenset({"load_epoch", "divisor_epoch"}),
    ("CGroup", "_avg_threads"): frozenset({"load_epoch", "divisor_epoch"}),
    ("Cpu", "online"): frozenset({"idle_epoch"}),
}

#: The cached accessors whose dependency closures are derived.  Keys
#: match ``repro.sched.sanitizer.FACTS``; values locate the accessor as
#: (class bare name or None, function name).
ACCESSORS: Dict[str, Tuple[Optional[str], str]] = {
    "runqueue-load": ("RunQueue", "load"),
    "group-stats": (None, "_fold_group_stats"),
    "designated-balancer": (None, "_elect_designated"),
}

_CONTRACT_CLASSES = frozenset(cls for cls, _attr in CONTRACT)
_CONTRACT_FIELDS = frozenset(attr for _cls, attr in CONTRACT)

#: Counter -> VecState notification(s) that must accompany a bump in any
#: class wired to the vectorized mirror (it holds a ``self.vec``
#: reference).  The scalar epoch bump invalidates the scalar memos; the
#: columnar mirror batches its invalidation through these calls, so a
#: bump without its partner is exactly the wiring bug PR 8 fixed by
#: hand: scalar reads stay fresh while the vec arrays serve stale rows.
VEC_PAIRING: Dict[str, FrozenSet[str]] = {
    "mutations": frozenset({"mark_dirty"}),
    "load_epoch": frozenset({"mark_dirty"}),
    "idle_epoch": frozenset({"mark_idle_change", "on_topology_change"}),
}

#: The runtime sanitizer cross-checks cached values against recomputes;
#: its reads verify the memo rather than feed it, so the dependency
#: derivation must not follow calls into it (otherwise every check it
#: performs would masquerade as a new accessor dependency).
_SANITIZER_MODULE = "repro.sched.sanitizer"


class _Project:
    """Symbol table, call graph, summaries, and coverage for one tree."""

    def __init__(self, files: List[Tuple[str, str, ast.Module]]):
        self.table = SymbolTable.build(files)
        self.graph = CallGraph.build(self.table, files)
        self.summaries = build_summaries(self.table)
        self.coverage = CoverageAnalysis(self.summaries, self.graph)
        self.init_only = self._init_only_fields()

    def _init_only_fields(self) -> FrozenSet[Tuple[str, str]]:
        """Fields whose *binding* is only ever assigned by ``self`` in
        ``__init__`` -- a stable pointer, exempt from the dependency
        check.  Mutate-kind writes (``cpu.rq.enqueue(...)``) change the
        held object, not the binding: the dependency they create is
        carried by the reads recorded on the inner class, so they do not
        disqualify a field here."""
        init_ok: Dict[Tuple[str, str], bool] = {}
        for summary in self.summaries.values():
            for write in summary.writes:
                if write.kind == "mutate":
                    continue
                cls = self._canonical_class(write.cls)
                if cls is None:
                    continue
                key = (cls, write.attr)
                ok = summary.fn.is_init and write.via_self
                init_ok[key] = init_ok.get(key, True) and ok
        return frozenset(key for key, ok in init_ok.items() if ok)

    def _canonical_class(self, cls: Optional[str]) -> Optional[str]:
        """Map a bare class name onto the contract ancestor it inherits
        from (``Autogroup`` canonicalizes to ``CGroup``)."""
        seen: Set[str] = set()
        queue = [cls] if cls is not None else []
        while queue:
            current = queue.pop(0)
            if current is None or current in seen or current.startswith("<"):
                break
            seen.add(current)
            if current in _CONTRACT_CLASSES:
                return current
            info = self.table.resolve_class(current)
            if info is None:
                break
            queue.extend(info.bases)
        return cls if cls is not None and not cls.startswith("<") else None

    def required_counters(
        self, cls: Optional[str], attr: str
    ) -> FrozenSet[str]:
        """Counters a write to ``(cls, attr)`` must bump; empty if the
        field is outside the contract."""
        if cls is not None and cls.startswith("<"):
            return frozenset()  # builtin/typing owner: never contract
        canonical = self._canonical_class(cls)
        if canonical is not None:
            return CONTRACT.get((canonical, attr), frozenset())
        # Unresolved receiver: distinctive underscore-prefixed contract
        # fields are still matched (conservative -- ``x._nr_running = 0``
        # is runqueue surgery whoever ``x`` is); plain names like
        # ``curr``/``online`` need a resolved type to avoid noise.
        if attr.startswith("_") and attr in _CONTRACT_FIELDS:
            merged: Set[str] = set()
            for (_cls, field), counters in CONTRACT.items():
                if field == attr:
                    merged.update(counters)
            return frozenset(merged)
        return frozenset()

    def accessor_function(
        self, cls: Optional[str], name: str
    ) -> Optional[FunctionInfo]:
        if cls is not None:
            info = self.table.resolve_class(cls)
            if info is None:
                return None
            return info.methods.get(name)
        for fn in self.table.functions.values():
            if fn.name == name and fn.cls is None:
                return fn
        return None

    def dependency_closure(
        self, fn: FunctionInfo
    ) -> FrozenSet[Tuple[str, str]]:
        """Contract-class fields transitively read by ``fn`` (following
        calls and property accesses), minus counters, memo cells, and
        init-only fields."""
        deps: Set[Tuple[str, str]] = set()
        visited: Set[str] = set()
        queue = [fn.qualname]
        while queue:
            qual = queue.pop(0)
            if qual in visited:
                continue
            visited.add(qual)
            summary = self.summaries.get(qual)
            if summary is not None and summary.fn.module == _SANITIZER_MODULE:
                continue
            if summary is not None:
                for read in summary.reads:
                    cls = self._canonical_class(read.cls)
                    if cls is None or cls not in _CONTRACT_CLASSES:
                        continue
                    if (cls, read.attr) in CONTRACT:
                        # Guarded fields always count as dependencies --
                        # including container bindings like ``_tree``
                        # whose *contents* are what the counter guards.
                        deps.add((cls, read.attr))
                        continue
                    if normalize_counter(read.attr) in COUNTER_NAMES:
                        continue
                    if read.attr.startswith("_cached"):
                        continue
                    if (cls, read.attr) in self.init_only:
                        continue
                    deps.add((cls, read.attr))
            for site in self.graph.callees(qual):
                queue.append(site.callee)
        return frozenset(deps)


def derived_facts(
    files: Iterable[Tuple[str, str, ast.Module]],
) -> Dict[str, FrozenSet[Tuple[str, str]]]:
    """Accessor label -> derived (class, field) dependency set.

    The same derivation the rule's drift check runs; exported so tests
    can pin ``repro.sched.sanitizer.FACTS`` to it.
    """
    project = _Project(list(files))
    facts: Dict[str, FrozenSet[Tuple[str, str]]] = {}
    for label, (cls, name) in ACCESSORS.items():
        fn = project.accessor_function(cls, name)
        if fn is not None:
            facts[label] = project.dependency_closure(fn)
    return facts


class CoherenceRule(Rule):
    """Interprocedural mutation/epoch coherence for the fast-path memos."""

    rule_id = "coherence-unbumped-write"
    description = (
        "every write to a memoized-load input must be followed by the "
        "matching epoch/mutation-counter bump on every path"
    )
    scope: Tuple[str, ...] = ("repro.sched", "repro.sim")
    cross_file = True

    def __init__(self) -> None:
        self._files: List[Tuple[str, str, ast.Module]] = []
        self._lines: Dict[str, List[str]] = {}

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        self._files.append((ctx.module, ctx.display_path, ctx.tree))
        self._lines[ctx.display_path] = ctx.lines
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        if not self._files:
            return
        project = _Project(self._files)
        emitted: Set[Tuple[str, int, str, str]] = set()
        for finding in self._check_writes(project, emitted):
            yield finding
        for finding in self._check_vec_pairing(project):
            yield finding
        for finding in self._check_drift(project):
            yield finding

    # -- pass 1: unbumped writes ------------------------------------------

    def _check_writes(
        self,
        project: _Project,
        emitted: Set[Tuple[str, int, str, str]],
    ) -> Iterator[Finding]:
        for summary in self._sorted_summaries(project):
            fn = summary.fn
            for write in summary.writes:
                if fn.is_init and write.via_self:
                    continue
                required = project.required_counters(write.cls, write.attr)
                if not required:
                    continue
                missing = sorted(
                    counter for counter in required
                    if not project.coverage.covered(
                        fn.qualname, write.line, counter
                    )
                )
                if not missing:
                    continue
                key = (fn.display_path, write.line, write.attr,
                       ",".join(missing))
                if key in emitted:
                    continue
                emitted.add(key)
                owner = (
                    project._canonical_class(write.cls) or write.cls
                    or "<unresolved>"
                )
                yield self._finding(
                    "coherence-unbumped-write",
                    fn.display_path,
                    write.line,
                    f"write to cached-load input {owner}.{write.attr} is "
                    f"not followed by a bump of {', '.join(missing)} on "
                    "every path reaching a cached read; bump the "
                    "counter(s) or suppress with "
                    "'# repro: noqa[coherence-unbumped-write]' if the "
                    "mutation provably preserves every cached aggregate",
                )

    # -- pass 1b: vec-mirror pairing --------------------------------------

    def _vec_classes(self, project: _Project) -> FrozenSet[str]:
        """Bare names of classes wired to the vectorized mirror: their
        body references ``self.vec`` (the field is assigned ``None`` at
        init and rebound by the scheduler, so it carries no annotation
        the symbol table could type -- presence of the reference *is*
        the wiring)."""
        wired: Set[str] = set()
        for qual in sorted(project.table.classes):
            info = project.table.classes[qual]
            for sub in ast.walk(info.node):
                if (
                    isinstance(sub, ast.Attribute)
                    and sub.attr == "vec"
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                ):
                    wired.add(info.name)
                    break
        return frozenset(wired)

    def _vec_notifications(self, fn: FunctionInfo) -> FrozenSet[str]:
        """VecState notification methods this function calls on a
        ``vec`` receiver (``self.vec.mark_dirty(...)``, an alias bound
        from it, or any ``*.vec.`` chain)."""
        names: Set[str] = set()
        for sub in ast.walk(fn.node):
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
            ):
                continue
            receiver = sub.func.value
            via_vec = (
                isinstance(receiver, ast.Attribute)
                and receiver.attr == "vec"
            ) or (
                isinstance(receiver, ast.Name) and receiver.id == "vec"
            )
            if via_vec:
                names.add(sub.func.attr)
        return frozenset(names)

    def _check_vec_pairing(self, project: _Project) -> Iterator[Finding]:
        """Every epoch/mutation bump in a vec-wired class must have the
        matching VecState notification somewhere in the same function
        (the bump cluster and its notification are adjacent by
        convention, but only presence is checked: the scalar bumps and
        the batched ``mark_dirty`` legitimately interleave)."""
        wired = self._vec_classes(project)
        if not wired:
            return  # tree without the vec mirror (fixtures)
        for summary in self._sorted_summaries(project):
            fn = summary.fn
            if fn.cls is None or fn.cls not in wired or fn.is_init:
                continue
            if not summary.bumps:
                continue
            notified = self._vec_notifications(fn)
            for counter, line in summary.bumps:
                required = VEC_PAIRING.get(counter)
                if required is None or required & notified:
                    continue
                options = " or ".join(
                    f"vec.{name}(...)" for name in sorted(required)
                )
                yield self._finding(
                    "coherence-unbumped-write",
                    fn.display_path,
                    line,
                    f"{fn.qualname} bumps {counter} but never notifies "
                    f"the vectorized mirror ({options}); the scalar "
                    "memos will refresh while the vec arrays serve "
                    "stale rows -- pair the bump with the notification "
                    "(guarded by 'if self.vec is not None') or suppress "
                    "with '# repro: noqa[coherence-unbumped-write]' if "
                    "this class is provably never wired to a VecState",
                )

    # -- pass 2: dependency drift -----------------------------------------

    def _check_drift(self, project: _Project) -> Iterator[Finding]:
        for label in sorted(ACCESSORS):
            cls, name = ACCESSORS[label]
            fn = project.accessor_function(cls, name)
            if fn is None:
                continue  # partial tree (fixtures): nothing to derive
            closure = project.dependency_closure(fn)
            for dep_cls, dep_attr in sorted(closure):
                if (dep_cls, dep_attr) in CONTRACT:
                    continue
                lineno = getattr(fn.node, "lineno", 0)
                yield self._finding(
                    "coherence-unguarded-dependency",
                    fn.display_path,
                    lineno,
                    f"cached accessor '{label}' ({fn.qualname}) depends "
                    f"on {dep_cls}.{dep_attr}, which no dirty counter "
                    "guards -- add the field to the coherence CONTRACT "
                    "(and a matching bump discipline) or stop reading it "
                    "from cached code",
                )

    # -- helpers -----------------------------------------------------------

    def _sorted_summaries(
        self, project: _Project
    ) -> List[FunctionSummary]:
        return [
            project.summaries[qual]
            for qual in sorted(project.summaries)
        ]

    def _finding(
        self, rule_id: str, path: str, line: int, message: str
    ) -> Finding:
        lines = self._lines.get(path, [])
        snippet = (
            lines[line - 1].strip() if 1 <= line <= len(lines) else ""
        )
        return Finding(
            rule_id=rule_id,
            path=path,
            line=line,
            col=0,
            message=message,
            snippet=snippet,
            severity="error",
        )

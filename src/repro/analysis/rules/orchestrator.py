"""Fork-safety rule: no shared mutable module state under the orchestrator.

``repro.perf.orchestrator`` executes trials in a ``multiprocessing`` pool.
Under the ``fork`` start method every worker inherits a copy-on-write
snapshot of the parent's module globals; under ``spawn`` each worker
re-imports the module tree from scratch.  Either way, module-level mutable
state silently breaks the orchestrator's determinism contract:

* a module-level ``random.Random`` instance is *identical* in every forked
  worker, so "independent" trials draw correlated samples -- and under
  ``spawn`` its state diverges from the serial run entirely.  Trials must
  rebuild their generator from the spec (seed or fingerprint) inside the
  worker.
* a module-level obs registry/session (``MetricsRegistry``, ``ObsSession``,
  ``TracepointRegistry``, ...) created at import time is bumped inside the
  worker process and dies with it; the parent never sees the counts.
  Registries must be constructed inside the trial function so results ride
  back through the :class:`~repro.perf.orchestrator.TrialResult`.
* a module-level dict/list/set that trial code *mutates* (a memo table, an
  accumulator) forks into per-worker copies: ``-j1`` and ``-j4`` runs see
  different cache histories and the merged output stops being
  byte-identical.

The rule is scoped to the packages whose functions the orchestrator
actually imports into workers (``repro.experiments``, ``repro.perf``).
Read-only module constants -- spec tables, paper numbers, ``__all__`` --
are fine and not reported: a container only counts when some function in
the module mutates it (method call, subscript store/delete, augmented
assignment, or an explicit ``global`` rebinding).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.core import FileContext, Finding, Rule

#: Packages whose module globals end up inside pool workers.
WORKER_SCOPE = ("repro.experiments", "repro.perf", "repro.slo")

#: RNG constructors that must not run at import time in worker modules.
_RNG_CLASSES = {"Random", "SystemRandom"}

#: Obs/orchestrator classes holding per-process mutable state; instances
#: created at import time are invisibly per-worker under fork/spawn.
_REGISTRY_CLASSES = {
    "MetricsRegistry",
    "MetricsRecorder",
    "ObsSession",
    "TracepointRegistry",
    "TraceBuffer",
    "ResultCache",
}

#: Constructors of mutable containers (besides display literals).
_CONTAINER_CALLS = {
    "dict",
    "list",
    "set",
    "defaultdict",
    "deque",
    "OrderedDict",
    "Counter",
}

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}


def _tail(node: ast.AST) -> Optional[str]:
    """Last identifier of a ``Name``/``Attribute`` chain (``a.b.C`` -> C)."""
    while isinstance(node, ast.Attribute):
        if not isinstance(node.value, (ast.Attribute, ast.Name)):
            return None
        if isinstance(node.value, ast.Name):
            return node.attr
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _own_statements(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _binding_names(target: ast.AST) -> Iterator[str]:
    """Plain names *bound* by an assignment target.

    ``x = ...`` and ``x, y = ...`` bind names; ``x[k] = ...`` and
    ``x.attr = ...`` mutate an existing object and bind nothing.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _binding_names(element)
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)


def _local_names(func: ast.AST) -> Set[str]:
    """Names bound locally in ``func`` (and so shadowing module globals)."""
    local: Set[str] = set()
    declared_global: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            local.add(arg.arg)
    for node in _own_statements(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                local.update(_binding_names(target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            local.update(_binding_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    local.update(_binding_names(item.optional_vars))
    return local - declared_global


def _mutations(func: ast.AST) -> Iterator[str]:
    """Module-global names ``func`` mutates in place (shadows excluded)."""
    local = _local_names(func)
    for node in _own_statements(func):
        if isinstance(node, ast.Global):
            for name in node.names:
                yield name
        elif isinstance(node, ast.Call):
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Name)
                and fn.attr in _MUTATOR_METHODS
                and fn.value.id not in local
            ):
                yield fn.value.id
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id not in local
                ):
                    yield target.value.id
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id not in local
                ):
                    yield target.value.id


class OrchestratorForkSafetyRule(Rule):
    """Flag module-level mutable state reachable from pool workers."""

    rule_id = "orchestrator-fork-safety"
    description = (
        "module-level RNGs, registries, and mutated containers fork into "
        "divergent per-worker copies; build them inside the trial function"
    )
    scope: Optional[Tuple[str, ...]] = WORKER_SCOPE

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        mutated: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mutated.update(_mutations(node))

        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
            else:
                continue
            if value is None:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names:
                continue
            label = ", ".join(names)

            if isinstance(value, ast.Call):
                tail = _tail(value.func)
                if tail in _RNG_CLASSES:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"module-level RNG '{label}' is shared by every "
                        "forked pool worker; build a Random seeded from "
                        "the TrialSpec inside the trial function",
                    )
                    continue
                if tail in _REGISTRY_CLASSES:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"module-level {tail} instance '{label}' lives "
                        "per worker process; construct it inside the "
                        "trial function and return data via TrialResult",
                    )
                    continue

            is_container = isinstance(
                value,
                (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
                 ast.SetComp),
            ) or (
                isinstance(value, ast.Call)
                and _tail(value.func) in _CONTAINER_CALLS
            )
            if is_container and any(name in mutated for name in names):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"module-level container '{label}' is mutated from "
                    "function code; per-worker copies diverge under the "
                    "pool -- keep trial state inside the trial function",
                )

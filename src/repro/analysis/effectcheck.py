"""Runtime effect sanitizer: declared write summaries vs observed writes.

The static half of this PR (:mod:`repro.analysis.effects`) *declares*
what every function writes; the ``pure-hot-path`` rule certifies the
fast-path closure from those declarations.  Like PR 4's coherence
sanitizer, the declaration is only as good as the analysis that produced
it -- a write the dataflow pass failed to attribute (an exotic receiver
expression, a helper the call graph missed) silently punches a hole in
the vectorization-safety certificate.

This module is the dynamic cross-check.  An :class:`EffectCheckSession`

* builds the same :class:`~repro.analysis.effects.EffectEngine` the lint
  rules use, over the installed ``repro`` tree;
* indexes every analyzed function by ``(filename, first line)`` -- both
  the ``def`` line and any decorator lines, matching how CPython stamps
  ``co_firstlineno`` across versions;
* patches ``__setattr__`` on the scheduler-state classes
  (:data:`CHECKED_CLASSES`: ``RunQueue``, ``Cpu``, ``CGroup``, ``Task``,
  ``BalancePass``) so every attribute write is attributed to the Python
  function executing it via the caller's frame.

A write whose executing function is in the static index but whose
``(class, attr)`` has no matching declaration in that function's
:class:`~repro.analysis.effects.EffectSummary` is a **divergence**: the
static summaries under-declare, and any certification built on them is
unsound.  Frames the index does not know (stdlib internals, generated
dataclass ``__init__``, lambdas, REPL code) are skipped -- the sanitizer
checks the *declared* world, it does not demand the whole interpreter be
analyzable.

Used by ``repro demo <bug> --effect-check`` (the soak harness: the four
paper-bug demos exercise every scheduler path) and the CI sanitizer-soak
job, which fails on any divergence.
"""

from __future__ import annotations

import ast
import importlib
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import iter_python_files, module_for_path
from repro.analysis.effects import EffectEngine

#: ``(module, class)`` pairs whose attribute writes are intercepted.
#: These are the scheduler-state objects the fast-path closure reads and
#: the balance pass mutates -- the state the vectorized rewrite batches.
CHECKED_CLASSES: Tuple[Tuple[str, str], ...] = (
    ("repro.sched.runqueue", "RunQueue"),
    ("repro.sched.cpu", "Cpu"),
    ("repro.sched.cgroup", "CGroup"),
    ("repro.sched.task", "Task"),
    ("repro.sched.balance", "BalancePass"),
)


class EffectDivergence(RuntimeError):
    """Observed attribute writes had no matching static declaration."""


@dataclass(frozen=True)
class Divergence:
    """One attribute write the static summaries failed to declare."""

    cls: str
    attr: str
    #: Qualname of the function whose frame executed the write.
    function: str
    filename: str
    line: int

    def format(self) -> str:
        return (
            f"{self.filename}:{self.line}: {self.function} wrote "
            f"{self.cls}.{self.attr} but its static effect summary does "
            "not declare that write"
        )


def installed_files() -> List[Tuple[str, str, ast.Module]]:
    """Parse the installed ``repro`` tree into engine input triples.

    Display paths are absolute and resolved so they can be matched
    against frame code objects' ``co_filename`` at write time.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    files: List[Tuple[str, str, ast.Module]] = []
    for path in iter_python_files([root]):
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source)
        except (OSError, SyntaxError):
            continue  # unreadable/broken files are the lint's problem
        files.append((module_for_path(path), str(path), tree))
    return files


class EffectCheckSession:
    """Patch scheduler-state classes; compare writes against summaries.

    Use as a context manager around the code to soak::

        session = EffectCheckSession()
        with session:
            scenario.run()
        print(session.summary())
        session.check()   # raises EffectDivergence on any divergence
    """

    def __init__(self, engine: Optional[EffectEngine] = None):
        self.engine = engine if engine is not None else EffectEngine(
            installed_files()
        )
        #: Writes observed in an indexed frame and matched to a
        #: declaration.
        self.verified = 0
        #: Writes observed in frames the static index does not cover
        #: (generated code, lambdas, stdlib) -- skipped, not judged.
        self.skipped = 0
        self.divergences: List[Divergence] = []
        #: ``(resolved filename, first line)`` -> qualname.  Both the
        #: ``def`` line and each decorator line map to the function, so
        #: the lookup is robust to where ``co_firstlineno`` points.
        self._index: Dict[Tuple[str, int], str] = {}
        #: qualname -> declared ``(class, attr)`` write set.
        self._declared: Dict[str, Set[Tuple[Optional[str], str]]] = {}
        for qual, summary in self.engine.summaries.items():
            node = summary.fn.node
            path = str(Path(summary.fn.display_path).resolve())
            lines = [getattr(node, "lineno", 0)]
            for deco in getattr(node, "decorator_list", ()):
                lines.append(deco.lineno)
            for lineno in lines:
                self._index[(path, lineno)] = qual
            self._declared[qual] = {
                (w.cls, w.attr) for w in summary.writes
            }
        #: ``co_filename`` -> resolved path, memoized per session.
        self._norm: Dict[str, str] = {}
        #: (class, had own ``__setattr__``, original) patch records.
        self._patched: List[Tuple[type, bool, Callable[..., None]]] = []

    # -- frame attribution -------------------------------------------------

    def _resolve_filename(self, filename: str) -> str:
        cached = self._norm.get(filename)
        if cached is None:
            try:
                cached = str(Path(filename).resolve())
            except OSError:
                cached = filename
            self._norm[filename] = cached
        return cached

    def _observe(self, obj: object, name: str) -> None:
        frame = sys._getframe(2)  # _observe <- checked __setattr__ <- writer
        code = frame.f_code
        qual = self._index.get(
            (self._resolve_filename(code.co_filename), code.co_firstlineno)
        )
        if qual is None:
            self.skipped += 1
            return
        declared = self._declared.get(qual, set())
        owners = {c.__name__ for c in type(obj).__mro__}
        for cls, attr in declared:
            if attr != name:
                continue
            # Exact receiver class (or a base the static pass saw), an
            # unresolved receiver (None), or a builtin/typing head
            # (bracketed) all count as the declaration for this write.
            if cls is None or cls.startswith("<") or cls in owners:
                self.verified += 1
                return
        self.divergences.append(
            Divergence(
                cls=type(obj).__name__,
                attr=name,
                function=qual,
                filename=code.co_filename,
                line=frame.f_lineno,
            )
        )

    # -- patching ----------------------------------------------------------

    def _checked_setattr(
        self, original: Callable[..., None]
    ) -> Callable[..., None]:
        session = self

        def checked(obj: Any, name: str, value: Any) -> None:
            session._observe(obj, name)
            original(obj, name, value)

        return checked

    def install(self) -> None:
        """Patch ``__setattr__`` on every checked class (idempotent)."""
        if self._patched:
            return
        for module_name, cls_name in CHECKED_CLASSES:
            module = importlib.import_module(module_name)
            cls = getattr(module, cls_name)
            had_own = "__setattr__" in cls.__dict__
            original = cls.__setattr__
            self._patched.append((cls, had_own, original))
            cls.__setattr__ = self._checked_setattr(original)

    def uninstall(self) -> None:
        """Restore every patched class to its pre-session behavior."""
        for cls, had_own, original in reversed(self._patched):
            if had_own:
                cls.__setattr__ = original  # type: ignore[method-assign]
            else:
                try:
                    del cls.__setattr__
                except AttributeError:
                    pass
        self._patched.clear()

    def __enter__(self) -> "EffectCheckSession":
        self.install()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()

    # -- verdicts ----------------------------------------------------------

    def summary(self) -> str:
        return (
            f"effect-check: {len(self.engine.summaries)} functions "
            f"indexed, {self.verified} writes verified against declared "
            f"summaries, {self.skipped} writes in unindexed frames "
            f"skipped, {len(self.divergences)} divergences"
        )

    def check(self) -> None:
        """Raise :class:`EffectDivergence` if any write diverged."""
        if not self.divergences:
            return
        shown = [d.format() for d in self.divergences[:10]]
        more = len(self.divergences) - len(shown)
        if more > 0:
            shown.append(f"(+{more} more)")
        raise EffectDivergence(
            "static effect summaries diverge from observed writes:\n  "
            + "\n  ".join(shown)
        )

"""Baseline ("grandfather") file support for the offline checker.

A baseline records the fingerprints of known, tolerated violations so a
freshly-added rule can gate CI immediately: old findings are suppressed,
*new* ones fail the build.  The file is JSON, human-reviewable, and meant
to shrink over time -- each entry carries enough context (rule, path,
snippet) to find and fix the violation it excuses.

Fingerprints hash the rule id, file path, and offending source text (not
the line number), so entries survive unrelated edits that shift lines.
Paths are recorded as they appear in findings -- repo-relative -- so the
checker and the baseline must both be run from the repository root.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.core import Finding

#: Schema version of the baseline file.
BASELINE_VERSION = 1


class BaselineError(ValueError):
    """Raised for an unreadable or structurally invalid baseline file."""


class Baseline:
    """A set of suppressed finding fingerprints, with context for humans."""

    def __init__(self, entries: Iterable[Dict[str, object]] = ()):
        self.entries: List[Dict[str, object]] = list(entries)
        self._fingerprints = {
            str(entry.get("fingerprint", "")) for entry in self.entries
        }

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint() in self._fingerprints

    def split(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (new, suppressed-by-baseline)."""
        new: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            (suppressed if finding in self else new).append(finding)
        return new, suppressed

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """A baseline that grandfathers exactly ``findings``."""
        return cls(
            {
                "fingerprint": f.fingerprint(),
                "rule": f.rule_id,
                "path": f.path,
                "line": f.line,
                "snippet": f.snippet,
            }
            for f in sorted(findings, key=Finding.sort_key)
        )

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}")
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}")
        if not isinstance(payload, dict) or "entries" not in payload:
            raise BaselineError(
                f"baseline {path} must be an object with an 'entries' list"
            )
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise BaselineError(
                f"baseline {path} has version {version!r}; "
                f"expected {BASELINE_VERSION}"
            )
        entries = payload["entries"]
        if not isinstance(entries, list):
            raise BaselineError(f"baseline {path}: 'entries' must be a list")
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {"version": BASELINE_VERSION, "entries": self.entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

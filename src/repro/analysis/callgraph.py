"""Type-aware project call graph.

Edges are resolved with :class:`~repro.analysis.symbols.SymbolTable`'s
annotation-driven inference, so ``cpu.rq.enqueue(...)`` in
``scheduler.py`` produces an edge to ``RunQueue.enqueue`` while
``self.pending_dispatch.add(...)`` (a ``Set[int]`` field) produces none
-- bare method names never create edges on their own.  Three call shapes
resolve:

* ``name(...)`` -- a same-module (or ``from``-imported) function, or a
  class constructor (edge to its ``__init__``);
* ``recv.m(...)`` -- a method of the receiver's inferred class, walking
  bare-name bases;
* ``alias.f(...)`` -- a function of an imported module
  (``from repro.sched import balance as lb; lb.periodic_balance(...)``).

``super().m(...)`` additionally resolves to the method of the *nearest
bare-name base* of the enclosing class that defines it -- the zero-arg
``super()`` idiom this codebase uses (two-arg ``super(X, y)`` is treated
the same way; the analyzer does not model explicit MRO restarts).

Plain attribute *reads* that resolve to a method also produce an edge:
that is how ``rq.nr_running`` (a property) connects the balancer's
dependency closure to the fields the property actually touches.

Unresolvable calls produce no edge; interprocedural consumers must treat
missing edges conservatively (the coherence pass treats an uncalled
writer as uncovered, never as safe).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.symbols import FunctionInfo, SymbolTable, TypeRef


@dataclass(frozen=True)
class CallSite:
    """One resolved call (or property access): caller -> callee."""

    caller: str
    callee: str
    line: int
    #: ``"call"`` or ``"property"`` (attribute access resolving to a
    #: method; no argument flow, but the body still executes on read).
    kind: str = "call"


class CallGraph:
    """Caller/callee indexes over resolved call sites."""

    def __init__(self) -> None:
        self.callees_of: Dict[str, List[CallSite]] = {}
        self.callers_of: Dict[str, List[CallSite]] = {}

    def _add(self, site: CallSite) -> None:
        self.callees_of.setdefault(site.caller, []).append(site)
        self.callers_of.setdefault(site.callee, []).append(site)

    def callees(self, qualname: str) -> List[CallSite]:
        return self.callees_of.get(qualname, [])

    def callers(self, qualname: str) -> List[CallSite]:
        return self.callers_of.get(qualname, [])

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        table: SymbolTable,
        files: Sequence[Tuple[str, str, ast.Module]],
    ) -> "CallGraph":
        graph = cls()
        aliases = module_aliases(files)
        for fn in table.functions.values():
            graph._scan_function(table, fn, aliases.get(fn.module, {}))
        return graph

    def _scan_function(
        self,
        table: SymbolTable,
        fn: FunctionInfo,
        aliases: Dict[str, str],
    ) -> None:
        node = fn.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        env = table.env_of(fn)
        call_funcs: Set[int] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                call_funcs.add(id(sub.func))
                callee = resolve_call(table, fn, sub, env, aliases)
                if callee is not None:
                    self._add(CallSite(fn.qualname, callee, sub.lineno))
        # Second walk: attribute reads resolving to methods (properties
        # and bound-method references), excluding the call heads above.
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.ctx, ast.Load)
                and id(sub) not in call_funcs
            ):
                base = table.infer_expr(sub.value, env)
                if base is None:
                    continue
                target = table.method(base.name, sub.attr)
                if target is not None:
                    self._add(CallSite(
                        fn.qualname, target.qualname, sub.lineno,
                        kind="property",
                    ))

def _is_super_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "super"
    )


def resolve_call(
    table: SymbolTable,
    fn: FunctionInfo,
    call: ast.Call,
    env: Dict[str, Optional[TypeRef]],
    aliases: Dict[str, str],
) -> Optional[str]:
    """The qualname one call expression resolves to, or None.

    The resolver the graph builder uses, exposed so interprocedural
    passes (effect taint, purity certification) can resolve *specific*
    call expressions against the same rules the graph was built with.
    """
    func = call.func
    if isinstance(func, ast.Name):
        info = table.resolve_class(func.id)
        if info is not None:
            ctor = info.methods.get("__init__")
            return ctor.qualname if ctor is not None else None
        target = table.module_function(fn.module, func.id)
        if target is not None:
            return target.qualname
        # ``from mod import f`` -- the alias maps straight to a
        # function qualname.
        dotted = aliases.get(func.id)
        if dotted is not None and dotted in table.functions:
            return dotted
        return None
    if isinstance(func, ast.Attribute):
        if _is_super_call(func.value) and fn.cls is not None:
            # ``super().m(...)``: the method of the nearest declaring
            # base, starting from the enclosing class's direct bases.
            info = table.resolve_class(fn.cls)
            if info is not None:
                for base in info.bases:
                    target = table.method(base, func.attr)
                    if target is not None:
                        return target.qualname
            return None
        if isinstance(func.value, ast.Name):
            # Module-alias call (``lb.periodic_balance``) -- but only
            # when the name is not a typed local shadowing the alias.
            if func.value.id not in env or env[func.value.id] is None:
                dotted = aliases.get(func.value.id)
                if dotted is not None:
                    qual = f"{dotted}.{func.attr}"
                    if qual in table.functions:
                        return qual
        base = table.infer_expr(func.value, env)
        if base is None:
            return None
        target = table.method(base.name, func.attr)
        return target.qualname if target is not None else None
    return None


def module_aliases(
    files: Sequence[Tuple[str, str, ast.Module]],
) -> Dict[str, Dict[str, str]]:
    """Per-module map of local import names to dotted targets.

    ``import a.b as c`` binds ``c -> a.b``; ``from a.b import c [as d]``
    binds the local name to ``a.b.c`` (works for both submodules and
    functions -- the resolver checks which one exists).
    """
    out: Dict[str, Dict[str, str]] = {}
    for module, _display, tree in files:
        table = out.setdefault(module, {})
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    local = name.asname or name.name.split(".")[0]
                    table[local] = name.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports: unused in this codebase
                for name in node.names:
                    local = name.asname or name.name
                    table[local] = f"{node.module}.{name.name}"
    return out

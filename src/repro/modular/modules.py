"""Optimization modules: pluggable placement suggestions.

A module looks at the machine state and *suggests* a CPU for a waking
task, with a stated reason and confidence.  It never places anything
itself -- the core module (:mod:`repro.modular.core`) decides, and its
invariant guard can override any suggestion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.scheduler import Scheduler
    from repro.sched.task import Task


@dataclass(frozen=True)
class Suggestion:
    """One module's placement proposal."""

    cpu: int
    reason: str
    #: Relative strength in [0, 1]; the core picks the strongest feasible.
    confidence: float = 0.5


class OptimizationModule:
    """Interface for placement-suggestion modules."""

    #: Short identifier used in decision logs.
    name = "base"

    def suggest_wakeup(
        self,
        sched: "Scheduler",
        task: "Task",
        waker_cpu: Optional[int],
        now: int,
    ) -> Optional[Suggestion]:
        """Propose a CPU for a waking task; None to abstain."""
        return None


class CacheAffinityModule(OptimizationModule):
    """Wake a thread close to where its data is warm.

    Prefers the previous core, then an idle core sharing the LLC with the
    waker or the previous core.  ``node_restricted=True`` reproduces the
    mainline behavior behind the Overload-on-Wakeup bug: when nothing in
    the node is idle it still insists on the (busy) previous core.
    """

    name = "cache-affinity"

    def __init__(self, node_restricted: bool = True):
        self.node_restricted = node_restricted

    def suggest_wakeup(self, sched, task, waker_cpu, now):
        topo = sched.topology
        prev = task.prev_cpu
        if prev is None or not sched.cpu(prev).online:
            return None
        if not task.can_run_on(prev):
            return None
        if sched.cpu(prev).is_idle:
            return Suggestion(prev, "previous core idle (warm cache)", 0.9)
        for cpu_id in sorted(topo.llc_siblings(prev)):
            cpu = sched.cpu(cpu_id)
            if cpu.online and cpu.is_idle and task.can_run_on(cpu_id):
                return Suggestion(
                    cpu_id, "idle core sharing the previous LLC", 0.7
                )
        if self.node_restricted:
            # The buggy insistence: better to wait on a busy core of the
            # right node than to lose cache affinity (so the module says).
            return Suggestion(
                prev, "busy previous core (cache reuse over latency)", 0.6
            )
        return None


class LeastLoadedModule(OptimizationModule):
    """A contention-avoidance module: spread onto the least-loaded core."""

    name = "least-loaded"

    def suggest_wakeup(self, sched, task, waker_cpu, now):
        best = None
        best_load = None
        for cpu in sched.cpus:
            if not cpu.online or not task.can_run_on(cpu.cpu_id):
                continue
            load = cpu.rq.load(now)
            if best_load is None or load < best_load:
                best = cpu.cpu_id
                best_load = load
        if best is None:
            return None
        return Suggestion(best, "globally least-loaded core", 0.4)

"""The core module: invariant-guarded placement over module suggestions.

:class:`InvariantGuardedScheduler` extends the CFS-model scheduler with
the paper's proposed architecture: on every wakeup it collects suggestions
from the registered optimization modules (highest confidence first) and
accepts the first *feasible* one.  A suggestion is infeasible when taking
it would violate the work-conserving invariant -- placing the thread on a
busy core while an allowed core sits idle.  When every suggestion is
infeasible (or none is offered), the guard places the thread on the
longest-idle allowed core, or falls back to the inherited placement when
no core is idle.

Every decision is recorded so experiments can attribute placements to
modules vs. guard overrides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sched import wakeup as wk
from repro.sched.scheduler import Scheduler
from repro.sched.task import Task
from repro.sim.system import System
from repro.modular.modules import OptimizationModule, Suggestion


@dataclass(frozen=True)
class PlacementDecision:
    """An audited wakeup placement."""

    time_us: int
    tid: int
    cpu: int
    source: str  # module name, "guard-override", or "fallback"
    reason: str


class InvariantGuardedScheduler(Scheduler):
    """Scheduler whose wakeup placement is module-suggested, guard-checked."""

    def __init__(self, *args, modules: Optional[List[OptimizationModule]] = None,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self.modules: List[OptimizationModule] = list(modules or [])
        self.decisions: List[PlacementDecision] = []
        self.guard_overrides = 0
        self.module_placements = 0

    def add_module(self, module: OptimizationModule) -> None:
        self.modules.append(module)

    # -- the core module's placement logic ---------------------------------

    def _idle_allowed_cpu(self, task: Task) -> Optional[int]:
        """Longest-idle online core the task may run on, if any."""
        for cpu in self.idle_cpus():
            if task.can_run_on(cpu.cpu_id):
                return cpu.cpu_id
        return None

    def _feasible(self, task: Task, suggestion: Suggestion) -> bool:
        """A suggestion must not break the work-conserving invariant."""
        cpu = self.cpu(suggestion.cpu)
        if not cpu.online or not task.can_run_on(suggestion.cpu):
            return False
        if cpu.is_idle:
            return True
        # Busy target: acceptable only when no allowed core is idle.
        return self._idle_allowed_cpu(task) is None

    def _select_wakeup_cpu(
        self, task: Task, waker_cpu: Optional[int], now: int
    ) -> PlacementDecision:
        suggestions = []
        for module in self.modules:
            suggestion = module.suggest_wakeup(self, task, waker_cpu, now)
            if suggestion is not None:
                suggestions.append((module.name, suggestion))
        suggestions.sort(key=lambda pair: -pair[1].confidence)
        for name, suggestion in suggestions:
            if self._feasible(task, suggestion):
                self.module_placements += 1
                return PlacementDecision(
                    now, task.tid, suggestion.cpu, name, suggestion.reason
                )
        if suggestions:
            # Some module spoke but nothing feasible: the guard overrides.
            idle = self._idle_allowed_cpu(task)
            if idle is not None:
                self.guard_overrides += 1
                return PlacementDecision(
                    now, task.tid, idle, "guard-override",
                    "suggestion would idle a core with work waiting",
                )
        # No (feasible) suggestion: inherited CFS placement as fallback.
        cpu = wk.select_task_rq_wake(self, task, waker_cpu, now)
        return PlacementDecision(
            now, task.tid, cpu, "fallback", "inherited select_task_rq"
        )

    # -- scheduler hook ------------------------------------------------------

    def wake_task(self, task: Task, waker_cpu: Optional[int], now: int) -> int:
        decision = self._select_wakeup_cpu(task, waker_cpu, now)
        self.decisions.append(decision)
        target = decision.cpu
        was_idle = self.cpu(target).is_idle
        task.tracker.update(now, was_running=False)
        task.stats.wakeups += 1
        if not was_idle:
            task.stats.wakeups_on_busy_core += 1
        if task.prev_cpu is not None and task.prev_cpu != target:
            task.stats.migrations += 1
            self.total_migrations += 1
        self.probe.on_wakeup(now, task.tid, target, waker_cpu, was_idle)
        self._enqueue_on(task, target, now, wakeup=True)
        return target

    def decision_summary(self) -> str:
        total = len(self.decisions)
        if total == 0:
            return "no wakeup decisions recorded"
        return (
            f"{total} wakeups: {self.module_placements} module-placed, "
            f"{self.guard_overrides} guard overrides, "
            f"{total - self.module_placements - self.guard_overrides} "
            f"fallbacks"
        )


class ModularSystem(System):
    """A simulated machine running the invariant-guarded modular scheduler."""

    def __init__(self, topology, features=None, modules=None, probe=None,
                 seed: int = 0):
        super().__init__(topology, features, probe, seed)
        # Swap the scheduler for the guarded variant, reusing the probe.
        self.scheduler = InvariantGuardedScheduler(
            topology, features, probe=self.scheduler.probe,
            modules=modules,
        )

    @property
    def guarded(self) -> InvariantGuardedScheduler:
        return self.scheduler  # typed accessor for experiments

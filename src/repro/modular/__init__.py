"""A prototype of the paper's Section 5 vision: a modular scheduler.

    "We envision a scheduler that is a collection of modules: the core
    module and optimization modules. [...] The core module should be able
    to take suggestions from optimization modules and to act on them
    whenever feasible, while always maintaining the basic invariants,
    such as not letting cores sit idle while there are runnable threads."

:mod:`repro.modular` implements exactly that architecture on top of the
simulator:

* :class:`~repro.modular.modules.OptimizationModule` -- the suggestion
  interface (wakeup placement today; the shape generalizes);
* :class:`~repro.modular.modules.CacheAffinityModule` -- "wake a thread
  on a core where it recently ran" (deliberately including the buggy
  node-restricted behavior, to show the guard neutralizing it);
* :class:`~repro.modular.modules.LeastLoadedModule` -- a contention-style
  module preferring the least-loaded allowed core;
* :class:`~repro.modular.core.InvariantGuardedScheduler` -- the core
  module: it consults the optimization modules in priority order and
  accepts a suggestion only if it does not violate the work-conserving
  invariant (never place a thread on a busy core while an allowed core
  is idle); otherwise it overrides with the longest-idle core.

The ablation benchmark shows the punchline: even with the *buggy*
cache-affinity module plugged in, the guarded core stays work-conserving
-- the invariant enforcement alone neutralizes the Overload-on-Wakeup
bug.
"""

from repro.modular.core import InvariantGuardedScheduler, ModularSystem
from repro.modular.modules import (
    CacheAffinityModule,
    LeastLoadedModule,
    OptimizationModule,
    Suggestion,
)

__all__ = [
    "CacheAffinityModule",
    "InvariantGuardedScheduler",
    "LeastLoadedModule",
    "ModularSystem",
    "OptimizationModule",
    "Suggestion",
]

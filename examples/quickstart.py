#!/usr/bin/env python3
"""Quickstart: simulate a machine, run a workload, watch the invariant.

Builds the paper's 64-core AMD machine, runs a small mixed workload under
the buggy mainline scheduler and under the all-fixes scheduler, and prints
utilization plus what the online sanity checker saw.

Run:  python examples/quickstart.py
"""

from repro import (
    ALL_FIXED,
    MAINLINE,
    SanityChecker,
    System,
    TaskSpec,
    amd_bulldozer_64,
    summarize_tasks,
)
from repro.sim.timebase import MS, SEC
from repro.stats.energy import measure_energy
from repro.stats.metrics import IdleOverloadSampler, machine_utilization
from repro.workloads.base import Run, Sleep


def worker_spec(name: str) -> TaskSpec:
    """A thread that computes in bursts with short waits in between."""

    def factory():
        def program():
            for _ in range(150):
                yield Run(3 * MS)
                yield Sleep(1 * MS)

        return program()

    return TaskSpec(name, factory)


def run_once(features, label: str) -> None:
    system = System(amd_bulldozer_64(), features, seed=42)

    # The paper's two tools: the online sanity checker and (via the
    # sampler) the idle-while-overloaded accounting.
    checker = SanityChecker(check_interval_us=100 * MS)
    checker.attach(system)
    sampler = IdleOverloadSampler()
    sampler.attach(system)

    # Trip the Missing Scheduling Domains bug: disable + re-enable a core,
    # then launch 128 workers from one shell.
    system.hotplug_cpu(9, False)
    system.hotplug_cpu(9, True)
    tasks = [system.spawn(worker_spec(f"w{i}"), parent_cpu=0)
             for i in range(128)]

    done = system.run_until_done(tasks, 120 * SEC)
    summary = summarize_tasks(tasks)

    print(f"--- {label}")
    print(f"  scheduler: {system.scheduler.features.describe()}")
    print(f"  all {summary.count} workers finished: {done} "
          f"in {system.now / 1e6:.3f}s virtual")
    print(f"  machine utilization: {machine_utilization(system):.1%}")
    print(f"  idle-while-overloaded time fraction: "
          f"{sampler.violation_fraction:.1%}")
    print(f"  {measure_energy(system, tasks).describe()}")
    print(f"  {checker.summary()}")
    if checker.reports:
        first = checker.reports[0]
        print("  first bug report:")
        for line in first.describe().splitlines():
            print(f"    {line}")
    print()


def main() -> None:
    print(amd_bulldozer_64().describe())
    print()
    run_once(MAINLINE, "mainline scheduler (all four bugs present)")
    run_once(ALL_FIXED, "all four fixes applied")


if __name__ == "__main__":
    main()

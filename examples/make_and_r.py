#!/usr/bin/env python3
"""The Group Imbalance scenario (paper Figure 2): make -j 64 + two R jobs.

Reproduces the multi-user machine from Section 3.1: a 64-worker kernel
build and two single-threaded R processes, each from its own ssh session
(autogroup).  Renders the three panels of Figure 2 as ASCII heatmaps and
writes SVG versions next to this script.

Run:  python examples/make_and_r.py [output-dir]
"""

import os
import sys

from repro.experiments.figure2 import render_figure2, run_figure2


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.abspath(__file__)
    )
    print("running make(64) + 2 x R under the buggy and fixed schedulers...")
    result = run_figure2(scale=0.3, seed=42)
    print(render_figure2(result, bins=96, svg_dir=out_dir))
    print()
    print(
        "reading the heatmaps: warmer cells = more threads in that core's "
        "runqueue; blue lines separate NUMA nodes.  Under the bug the two "
        "R nodes stay mostly white (idle cores) while other nodes run two "
        "threads per core; the load heatmap (2b) shows why -- the R cores' "
        "single huge load inflates their nodes' average."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Offline invariant analysis on a recorded scheduling trace.

Records a trace (runqueue sizes, wakeups, migrations) from a buggy run,
saves it as JSON lines, reloads it, and runs the invariant analysis -- the
workflow for analyzing traces captured elsewhere with the same tooling.

Run:  python examples/offline_trace_analysis.py [trace.jsonl]
"""

import os
import sys
import tempfile

from repro import MAINLINE, System, TaskSpec, load_trace, save_trace, two_nodes
from repro.core.offline import find_trace_violations, violation_time_fraction
from repro.sim.timebase import MS, SEC
from repro.viz.events import NrRunningEvent, TraceProbe
from repro.viz.heatmap import HeatmapBuilder, render_ascii_heatmap
from repro.workloads.base import Run


def hog(name: str) -> TaskSpec:
    def factory():
        def program():
            while True:
                yield Run(5 * MS)

        return program()

    return TaskSpec(name, factory)


def main() -> None:
    path = (
        sys.argv[1]
        if len(sys.argv) > 1
        else os.path.join(tempfile.gettempdir(), "wastedcores-trace.jsonl")
    )

    # 1. Record: the Missing Scheduling Domains bug on a small machine.
    system = System(two_nodes(cores_per_node=4),
                    MAINLINE.without_autogroup(), seed=7)
    probe = TraceProbe(record_considered=False, record_load=False)
    system.attach_probe(probe)
    system.hotplug_cpu(2, False)
    system.hotplug_cpu(2, True)
    for i in range(8):
        system.spawn(hog(f"h{i}"), parent_cpu=0)
    system.run_for(1 * SEC)
    count = save_trace(probe.buffer, path)
    print(f"recorded {count} events to {path}")

    # 2. Reload and analyze.
    trace = load_trace(path)
    violations = find_trace_violations(
        trace, num_cpus=8, min_duration_us=100 * MS, end_us=system.now
    )
    fraction = violation_time_fraction(trace, 8, span_us=system.now)
    print(f"\ninvariant violations (>= 100ms) found offline: {len(violations)}")
    for v in violations:
        print(f"  {v.describe()}")
    print(f"fraction of the run in a violated state: {fraction:.1%}")

    # 3. Visualize the same trace.
    builder = HeatmapBuilder(8, 0, system.now, bins=64)
    matrix = builder.from_trace(trace, NrRunningEvent)
    print()
    print(render_ascii_heatmap(
        matrix, cores_per_node=4,
        title="runqueue sizes from the reloaded trace "
              "(node 1 idle, node 0 overloaded)",
    ))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The Missing Scheduling Domains scenario (paper Figure 5 / Table 3).

Disables and re-enables a core through the /proc-interface analog, then
launches a 16-thread application.  Under the bug the cross-node scheduling
domains are gone: the threads pile onto one node and core 0's balancing
never even *considers* the overloaded node -- shown by the considered-
cores plot, the direct analog of the paper's Figure 5.

Run:  python examples/core_hotplug.py [output-dir]
"""

import os
import sys

from repro.experiments.figure5 import render_figure5, run_figure5
from repro.experiments.figures_topology import format_bulldozer_domains


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.abspath(__file__)
    )
    print("domain hierarchy of cpu 0 before hotplug:")
    print(format_bulldozer_domains(0))
    print()
    print("hotplugging core 9 off/on, launching 16 threads...\n")
    result = run_figure5(seed=42)
    print(render_figure5(result, svg_dir=out_dir))
    print()
    print(
        "under the bug core 0 examines only its own node "
        f"({result.buggy.coverage:.0%} of the machine) on every balancing "
        "call; with the regeneration fix its one-hop and machine-level "
        f"domains return ({result.fixed.coverage:.0%} coverage)."
    )


if __name__ == "__main__":
    main()

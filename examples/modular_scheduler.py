#!/usr/bin/env python3
"""The paper's Section 5 vision, running: an invariant-guarded modular
scheduler.

    "The core module should be able to take suggestions from optimization
    modules and to act on them whenever feasible, while always maintaining
    the basic invariants, such as not letting cores sit idle while there
    are runnable threads."

This demo plugs the *buggy* cache-affinity policy (the exact behavior
behind the Overload-on-Wakeup bug) into the guarded core as an
optimization module, and shows the guard neutralizing it: the sleepy
thread never piles onto busy cores, because an infeasible suggestion is
overridden with the longest-idle core.

Run:  python examples/modular_scheduler.py
"""

from dataclasses import replace

from repro.modular import CacheAffinityModule, LeastLoadedModule, ModularSystem
from repro.sched.features import SchedFeatures
from repro.sim.system import System
from repro.sim.timebase import MS, SEC
from repro.topology import two_nodes
from repro.workloads.base import Run, Sleep, TaskSpec


def pinned_hog(i):
    def factory():
        def program():
            while True:
                yield Run(5 * MS)
        return program()

    return TaskSpec(f"hog{i}", factory, allowed_cpus=frozenset({i}))


def bounded_filler():
    def factory():
        def program():
            yield Run(5 * MS)
        return program()

    return TaskSpec("filler", factory, allowed_cpus=frozenset({0}))


def sleepy():
    def factory():
        def program():
            for _ in range(400):
                yield Run(1 * MS)
                yield Sleep(1 * MS)
        return program()

    return TaskSpec("sleepy", factory)


def run(system, label):
    for i in range(4):
        system.spawn(pinned_hog(i), on_cpu=i)
    system.spawn(bounded_filler(), on_cpu=0)
    system.run_for(10 * MS)
    task = system.spawn(sleepy(), on_cpu=0)
    system.run_for(1 * SEC)
    frac = task.stats.wakeups_on_busy_core / max(task.stats.wakeups, 1)
    print(f"--- {label}")
    print(f"  sleepy thread wakeups on busy cores: {frac:.1%}")
    return task


def main() -> None:
    # Periodic balancing slowed way down, so placement decisions are all
    # that matters -- the worst case for a bad wakeup policy.
    features = replace(
        SchedFeatures().without_autogroup(), balance_base_us=10 * SEC
    )
    topo = two_nodes(cores_per_node=4)

    print("scenario: node 0 fully busy (4 pinned hogs); node 1 idle;")
    print("a sleepy thread waking every millisecond starts on node 0.\n")

    run(System(topo, features, seed=6),
        "monolithic scheduler, buggy wakeup path")

    guarded = ModularSystem(
        topo, features,
        modules=[CacheAffinityModule(node_restricted=True)], seed=6,
    )
    run(guarded, "modular core + the SAME buggy policy as a module")
    print(f"  {guarded.guarded.decision_summary()}")
    sample = [d for d in guarded.guarded.decisions
              if d.source == "guard-override"][:1]
    for d in sample:
        print(f"  first override: t={d.time_us}us -> cpu {d.cpu} "
              f"({d.reason})")

    both = ModularSystem(
        topo, features,
        modules=[CacheAffinityModule(node_restricted=True),
                 LeastLoadedModule()],
        seed=6,
    )
    run(both, "modular core + cache-affinity AND contention modules")
    print(f"  {both.guarded.decision_summary()}")

    print(
        "\nthe invariant guard turns the Overload-on-Wakeup *bug* into a "
        "mere suggestion it can refuse -- the paper's argument for "
        "rethinking the scheduler's architecture."
    )


if __name__ == "__main__":
    main()

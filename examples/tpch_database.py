#!/usr/bin/env python3
"""The Overload-on-Wakeup scenario: a commercial database running TPC-H.

Reproduces Section 3.3 / Table 2: 64 database workers (one per core, in
per-container autogroups) execute TPC-H queries while transient kernel
threads perturb the load.  Compares query-18 latency and the busy-wakeup
fraction across the four bug-fix configurations, and runs the offline
invariant analysis over the recorded trace (Figure 3's episodes).

Run:  python examples/tpch_database.py
"""

from repro.experiments.figure3 import run_database_traced
from repro.experiments.harness import ExperimentConfig
from repro.sched.features import SchedFeatures

CONFIGS = (
    ("no fixes", ()),
    ("group-imbalance fix", ("group_imbalance",)),
    ("overload-on-wakeup fix", ("overload_on_wakeup",)),
    ("both fixes", ("group_imbalance", "overload_on_wakeup")),
)


def main() -> None:
    print("TPC-H Q18 x8 on the 64-core machine, per configuration:\n")
    baseline = None
    for label, fixes in CONFIGS:
        features = SchedFeatures().without_autogroup()
        if fixes:
            features = features.with_fixes(*fixes)
        config = ExperimentConfig(features, seed=42, scale=1.0)
        run = run_database_traced(config, queries=8)
        total_ms = run.span_us / 1000.0
        if baseline is None:
            baseline = total_ms
            delta = "baseline"
        else:
            delta = f"{(total_ms - baseline) / baseline * 100:+.1f}%"
        print(f"  {label:24s} completion {total_ms:8.1f}ms ({delta})")
        print(
            f"  {'':24s} wakeups on busy cores: "
            f"{run.busy_wakeup_fraction:.1%}; invariant-violation "
            f"episodes >= 2ms: {len(run.violations)} "
            f"({run.violation_time_ms:.1f}ms total)"
        )
    print(
        "\nthe wakeup fix wins by waking stranded workers on the longest-"
        "idle core instead of piling them onto busy cores of their node."
    )


if __name__ == "__main__":
    main()
